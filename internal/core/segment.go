package core

import (
	"math"
	"slices"
	"sort"
	"time"

	"rfipad/internal/dsp"
)

// Segmenter separates strokes from a continuous phase stream by
// detecting the "adjustment intervals" between them (§III-C1): the
// stream is cut into 100 ms frames, each frame's RMS phase disturbance
// is computed (Eq. 11), frames are grouped into 0.5 s windows, and a
// window is part of a stroke when the standard deviation of its frame
// RMS values exceeds a threshold (Eq. 12).
type Segmenter struct {
	// FrameLen is the frame length (default 100 ms, §III-C1).
	FrameLen time.Duration
	// WindowFrames is the number of frames per window (default 5,
	// i.e. 0.5 s).
	WindowFrames int
	// Threshold is `thre` of Eq. 12, in radians. The paper determines
	// it empirically for its deployment; a zero value selects the
	// adaptive default, which scales with the capture's own quiet
	// noise level (adaptiveK × the median window std, floored).
	Threshold float64
	// MergeGap joins detected spans separated by less than this gap.
	// A stroke's phase rotation stalls briefly where the reflected
	// path length is stationary (the symmetric trends of Fig. 8),
	// which can split one stroke in two; an adjustment interval is
	// much longer than this. Default 300 ms.
	MergeGap time.Duration
	// MinSpan drops detected spans shorter than this: the briefest
	// real stroke lasts several frames (the paper treats a 0.5 s
	// window as the detection unit), while interference pops last one
	// or two. Default 400 ms.
	MinSpan time.Duration
}

// Adaptive-threshold tuning: the quietest quarter of a capture's
// windows tracks the noise floor even when strokes cover most of the
// session; stroke windows stand an order of magnitude above it.
const (
	adaptiveK        = 3.0
	adaptiveQuantile = 0.25
	thresholdFloor   = 0.02
	// adaptivePeakFrac scales the threshold with the capture's own
	// dynamic range: transition ripple a few × above the noise floor
	// must not seed spans when real strokes stand 20–50× above it.
	adaptivePeakFrac = 0.25
)

// NewSegmenter returns a Segmenter with the paper's parameters and the
// adaptive threshold.
func NewSegmenter() *Segmenter {
	return &Segmenter{
		FrameLen:     100 * time.Millisecond,
		WindowFrames: 5,
		MergeGap:     300 * time.Millisecond,
		MinSpan:      400 * time.Millisecond,
	}
}

// Span is one detected stroke interval.
type Span struct {
	Start, End time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// frameRMS computes Eq. 11 per frame: the sum over tags of the RMS of
// the mean-subtracted phase samples in the frame.
func (g *Segmenter) frameRMS(readings []Reading, cal *Calibration, start, end time.Duration) []float64 {
	nFrames := int((end - start) / g.FrameLen)
	if nFrames <= 0 {
		return nil
	}
	n := cal.NumTags()
	// Collect θ' samples per (frame, tag).
	perFrame := make([][][]float64, nFrames)
	for i := range perFrame {
		perFrame[i] = make([][]float64, n)
	}
	for _, r := range readings {
		if r.Time < start || r.Time >= end || r.TagIndex < 0 || r.TagIndex >= n {
			continue
		}
		if cal.IsDead(r.TagIndex) {
			// Sporadic reads from an uncalibrated tag would feed raw
			// (unsuppressed) phases into the frame statistic.
			continue
		}
		f := int((r.Time - start) / g.FrameLen)
		if f >= nFrames {
			continue
		}
		// p_ij: the diversity-suppressed phase, as a signed excursion
		// around the tag's static centre.
		p := dsp.WrapSigned(r.Phase - cal.MeanPhase[r.TagIndex])
		perFrame[f][r.TagIndex] = append(perFrame[f][r.TagIndex], p)
	}
	// Eq. 11 runs over the diversity-suppressed streams: each tag's
	// contribution is normalized by its relative deviation bias, so a
	// tag sitting in heavy multipath cannot drown the frame statistic
	// (with UniformCalibration all factors are 1 — the unsuppressed
	// arm of Fig. 16).
	// The factor only attenuates (≤1): a tag noisier than typical is
	// damped toward the typical level; quiet tags pass unchanged.
	typBias := dsp.Median(cal.Bias)
	factor := make([]float64, n)
	for i := range factor {
		f := 1.0
		if cal.Bias[i] > 0 && typBias > 0 && cal.Bias[i] > typBias {
			f = typBias / cal.Bias[i]
			if f < 1.0/32 {
				f = 1.0 / 32
			}
		}
		factor[i] = f
	}
	out := make([]float64, nFrames)
	for f := range perFrame {
		var sum float64
		for i := 0; i < n; i++ {
			if len(perFrame[f][i]) == 0 {
				continue
			}
			sum += factor[i] * dsp.RMS(perFrame[f][i])
		}
		out[f] = sum
	}
	return out
}

// Segment detects the stroke spans in the readings between start and
// end. The returned spans have frame granularity.
func (g *Segmenter) Segment(readings []Reading, cal *Calibration, start, end time.Duration) []Span {
	return g.segmentRMS(g.frameRMS(readings, cal, start, end), start, nil)
}

// segScratch holds every buffer one segmentRMS evaluation needs, so a
// streaming caller polling once per frame allocates nothing in steady
// state. The zero value is ready; buffers grow to the high-water mark
// and stay there.
//
// Across calls the scratch also carries the incremental window-std
// state (stds, sortedStds, incr*): a streaming caller that knows which
// frames changed since its last poll pays only for the handful of
// sliding windows those frames touch, instead of recomputing — and
// re-sorting — every window std per poll.
type segScratch struct {
	stds   []float64
	seeded []float64
	sorted []float64 // quantile workspace (copied + sorted per use)
	active []bool
	spans  []Span

	// sortedStds mirrors stds as a NaN-free sorted multiset, maintained
	// incrementally so the adaptive threshold's quantile and peak are
	// O(1) lookups instead of a copy + sort per poll.
	sortedStds []float64
	incrValid  bool
	incrStart  time.Duration // rms[0]'s stream time when stds was built
}

// sortedInsert adds v to the sorted multiset (NaNs are excluded, as the
// quantile path excludes them).
func (sc *segScratch) sortedInsert(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(sc.sortedStds, v)
	sc.sortedStds = append(sc.sortedStds, 0)
	copy(sc.sortedStds[i+1:], sc.sortedStds[i:])
	sc.sortedStds[i] = v
}

// sortedRemove drops one occurrence of v from the sorted multiset.
func (sc *segScratch) sortedRemove(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(sc.sortedStds, v)
	if i < len(sc.sortedStds) && sc.sortedStds[i] == v {
		sc.sortedStds = sc.sortedStds[:i+copy(sc.sortedStds[i:], sc.sortedStds[i+1:])]
	}
}

// quantile computes the q-th quantile of x through the scratch's
// sorting buffer, mirroring dsp.NewCDF(x).Quantile(q) without the
// allocation. NaNs are dropped as CDF does.
func (sc *segScratch) quantile(x []float64, q float64) float64 {
	sc.sorted = sc.sorted[:0]
	for _, v := range x {
		if !math.IsNaN(v) {
			sc.sorted = append(sc.sorted, v)
		}
	}
	slices.Sort(sc.sorted)
	return dsp.QuantileSorted(sc.sorted, q)
}

// segmentRMS runs the span-detection back half of Segment over an
// already-computed per-frame RMS trace starting at start. With a nil
// scratch it allocates fresh buffers (the batch path); the streaming
// recognizer passes its own scratch and must consume the returned spans
// before the next call, which reuses them.
func (g *Segmenter) segmentRMS(rms []float64, start time.Duration, sc *segScratch) []Span {
	return g.segmentRMSFrom(rms, start, sc, -1)
}

// segmentRMSFrom is segmentRMS with a change watermark: when
// changedFrom >= 0, frames [changedFrom, len(rms)) are the only ones
// whose rms values may differ from the previous call on the same
// scratch (start advances — history trims — are detected and handled
// by shifting). Only the sliding windows those frames touch are
// recomputed, and the threshold's quantile/peak read the incrementally
// maintained sorted multiset, so a quiet steady-state poll costs a few
// window stds instead of a full re-sort. changedFrom < 0 (or any
// inconsistency with the scratch's remembered geometry) falls back to
// a full rebuild; the detected spans are bit-identical either way.
func (g *Segmenter) segmentRMSFrom(rms []float64, start time.Duration, sc *segScratch, changedFrom int) []Span {
	if len(rms) == 0 {
		return nil
	}
	if sc == nil {
		sc = &segScratch{}
	}
	w := g.WindowFrames
	if w <= 0 {
		w = 5
	}

	// Sliding window std(RMS): frame f is "active" if any window
	// containing it exceeds the threshold. Sliding (rather than the
	// strictly tiled windows of the paper) removes the 0.5 s
	// quantization of stroke boundaries while keeping Eq. 12 intact.
	g.updateStds(rms, start, sc, changedFrom, w)
	stds := sc.stds

	var thre float64
	if g.Threshold > 0 {
		thre = g.Threshold
	} else {
		// The adaptive rule of effectiveThresholdScratch over the sorted
		// multiset: same multiset → same order statistics → same value.
		thre = adaptiveK * dsp.QuantileSorted(sc.sortedStds, adaptiveQuantile)
		if n := len(sc.sortedStds); n > 0 {
			if peak := sc.sortedStds[n-1]; peak*adaptivePeakFrac > thre {
				thre = peak * adaptivePeakFrac
			}
		}
		if !(thre > thresholdFloor) { // also catches NaN
			thre = thresholdFloor
		}
	}

	// Quiet-poll early exit: when no window std clears the threshold,
	// the seeding loop below cannot activate a frame, so the call would
	// fall through to the len(seeded) == 0 return anyway. The sorted
	// multiset's tail is the peak, making the common all-quiet poll a
	// comparison instead of a sweep.
	if n := len(sc.sortedStds); n == 0 || sc.sortedStds[n-1] <= thre {
		return nil
	}

	if cap(sc.active) < len(rms) {
		sc.active = make([]bool, len(rms))
	}
	active := sc.active[:len(rms)]
	for i := range active {
		active[i] = false
	}
	seeded := sc.seeded[:0]
	for f := 0; f+w <= len(rms); f++ {
		if stds[f] > thre {
			for k := f; k < f+w; k++ {
				if !active[k] {
					active[k] = true
					seeded = append(seeded, rms[k])
				}
			}
		}
	}
	sc.seeded = seeded

	if len(seeded) == 0 {
		return nil
	}

	// Bridging: Eq. 12's std(RMS) rule fires on transitions but can
	// dip mid-stroke when the disturbance plateaus. A frame whose RMS
	// sits above the midpoint between the quiet floor and the typical
	// active level is part of a stroke too.
	quiet := sc.quantile(rms, adaptiveQuantile)
	bridge := (quiet + sc.quantile(seeded, 0.5)) / 2
	for f, v := range rms {
		if v > bridge {
			active[f] = true
		}
	}

	// Trim the edges of each active run back to the bridge level: this
	// sharpens boundaries that the window-level rule blurs and discards
	// runs that were only transition ripple.
	spans := sc.spans[:0]
	f := 0
	for f < len(active) {
		if !active[f] {
			f++
			continue
		}
		lo := f
		for f < len(active) && active[f] {
			f++
		}
		hi := f // exclusive
		for lo < hi && rms[lo] <= bridge {
			lo++
		}
		for hi > lo && rms[hi-1] <= bridge {
			hi--
		}
		if hi <= lo {
			continue
		}
		spans = append(spans, Span{
			Start: start + time.Duration(lo)*g.FrameLen,
			End:   start + time.Duration(hi)*g.FrameLen,
		})
	}
	sc.spans = spans
	merged := g.merge(spans)
	if g.MinSpan <= 0 {
		return merged
	}
	kept := merged[:0]
	for _, sp := range merged {
		if sp.Duration() >= g.MinSpan {
			kept = append(kept, sp)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}

// updateStds brings the scratch's sliding-window stds (and their sorted
// multiset) up to date with rms. Each recomputed window std is a fresh
// dsp.Std over the current rms values — never a running update — so an
// incrementally maintained entry is bit-identical to a full rebuild's.
//
// The incremental path survives the two geometry changes a streaming
// caller produces: a history trim (start advanced by whole frames;
// dropped frames' windows shift down — their values are unchanged
// because the surviving rms values are unchanged) and appended frames.
// A horizon regression (rms shorter than the scratch remembers, e.g.
// the poll after a flush pushed the horizon far ahead) forces a full
// rebuild, as does any call without a watermark.
func (g *Segmenter) updateStds(rms []float64, start time.Duration, sc *segScratch, changedFrom, w int) {
	nw := len(rms) - w + 1
	if nw < 0 {
		nw = 0
	}
	rebuild := changedFrom < 0 || !sc.incrValid || g.FrameLen <= 0
	if !rebuild && start != sc.incrStart {
		if start < sc.incrStart || (start-sc.incrStart)%g.FrameLen != 0 {
			rebuild = true
		} else if drop := int((start - sc.incrStart) / g.FrameLen); drop >= len(sc.stds) {
			rebuild = true
		} else {
			for _, v := range sc.stds[:drop] {
				sc.sortedRemove(v)
			}
			sc.stds = sc.stds[:copy(sc.stds, sc.stds[drop:])]
		}
	}
	if !rebuild && nw < len(sc.stds) {
		rebuild = true
	}
	if rebuild {
		sc.stds = sc.stds[:0]
		sc.sortedStds = sc.sortedStds[:0]
		for f := 0; f < nw; f++ {
			v := dsp.Std(rms[f : f+w])
			sc.stds = append(sc.stds, v)
			if !math.IsNaN(v) {
				sc.sortedStds = append(sc.sortedStds, v)
			}
		}
		slices.Sort(sc.sortedStds)
	} else {
		// Windows touching a changed frame: [changedFrom-w+1, nw), plus
		// any windows beyond the previous high-water mark.
		lo := changedFrom - w + 1
		if lo < 0 {
			lo = 0
		}
		if lo > len(sc.stds) {
			lo = len(sc.stds)
		}
		for f := lo; f < nw; f++ {
			v := dsp.Std(rms[f : f+w])
			if f < len(sc.stds) {
				sc.sortedRemove(sc.stds[f])
				sc.stds[f] = v
			} else {
				sc.stds = append(sc.stds, v)
			}
			sc.sortedInsert(v)
		}
	}
	sc.incrValid = true
	sc.incrStart = start
}

// merge joins spans closer than MergeGap.
func (g *Segmenter) merge(spans []Span) []Span {
	if len(spans) < 2 || g.MergeGap <= 0 {
		return spans
	}
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if sp.Start-last.End <= g.MergeGap {
			last.End = sp.End
		} else {
			out = append(out, sp)
		}
	}
	return out
}

// effectiveThreshold resolves Eq. 12's `thre`: the configured constant
// when set, otherwise the adaptive default derived from this capture's
// window stds.
func (g *Segmenter) effectiveThreshold(stds []float64) float64 {
	return g.effectiveThresholdScratch(stds, &segScratch{})
}

// effectiveThresholdScratch is effectiveThreshold using the caller's
// quantile workspace.
func (g *Segmenter) effectiveThresholdScratch(stds []float64, sc *segScratch) float64 {
	if g.Threshold > 0 {
		return g.Threshold
	}
	thre := adaptiveK * sc.quantile(stds, adaptiveQuantile)
	if _, peak := dsp.MinMax(stds); peak*adaptivePeakFrac > thre {
		thre = peak * adaptivePeakFrac
	}
	if !(thre > thresholdFloor) { // also catches NaN
		thre = thresholdFloor
	}
	return thre
}

// EffectiveThreshold reports the Eq. 12 threshold that Segment would
// use on this capture — diagnostic for tests and figure benches.
func (g *Segmenter) EffectiveThreshold(readings []Reading, cal *Calibration, start, end time.Duration) float64 {
	return g.effectiveThreshold(g.WindowStdTrace(readings, cal, start, end))
}

// FrameRMSTrace exposes the per-frame RMS values (Fig. 9's middle
// panel) for diagnostics and the figure benchmarks.
func (g *Segmenter) FrameRMSTrace(readings []Reading, cal *Calibration, start, end time.Duration) []float64 {
	return g.frameRMS(readings, cal, start, end)
}

// WindowStdTrace exposes std(RMS) per sliding window position (Fig. 9's
// bottom panel).
func (g *Segmenter) WindowStdTrace(readings []Reading, cal *Calibration, start, end time.Duration) []float64 {
	rms := g.frameRMS(readings, cal, start, end)
	w := g.WindowFrames
	if w <= 0 || len(rms) < w {
		return nil
	}
	out := make([]float64, len(rms)-w+1)
	for f := range out {
		out[f] = dsp.Std(rms[f : f+w])
	}
	return out
}
