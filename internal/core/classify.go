package core

import (
	"math"

	"rfipad/internal/stroke"
)

// ShapeResult is the geometric classification of a binarized
// disturbance image.
type ShapeResult struct {
	// Shape is the recognized basic shape.
	Shape stroke.Shape
	// Box is the foreground bounding box in normalized canvas
	// coordinates, padded by half a cell.
	Box stroke.Rect
	// Cells lists the foreground tag indices.
	Cells []int
	// CenterX, CenterY is the intensity-weighted centroid in
	// normalized canvas coordinates — more robust to the disturbance
	// bleeding past the stroke's footprint than the box centre, so the
	// letter composer uses it for position disambiguation.
	CenterX, CenterY float64
	// Elongation is λ1/λ2 of the weighted scatter — diagnostic.
	Elongation float64
	// Ok is false when the image holds no classifiable foreground.
	Ok bool
}

// Classification thresholds. A straight stroke across a 5×5 grid
// lights a nearly degenerate cell set (elongation → ∞); an arc lights
// a bent one (elongation ~1–4); a click concentrates its weight on one
// tag, so its weighted RMS radius is well under a cell pitch while any
// real stroke spans several cells.
const (
	lineElongation = 5.0
	clickSpread    = 0.16 // weighted RMS radius, normalized canvas units
	clickMaxCells  = 3
)

// ClassifyShape turns a disturbance image and its foreground mask into
// a basic shape (§III-A3's "estimating the '1's in the tag array").
// vals supplies per-cell weights (the grayscale intensities); it may be
// nil for uniform weighting.
func ClassifyShape(grid Grid, vals []float64, mask []bool) ShapeResult {
	return ClassifyShapeDegraded(grid, vals, mask, nil)
}

// ClassifyShapeDegraded is ClassifyShape with knowledge of dead
// (interpolated) cells. A click directly over a dead tag cannot light
// that tag; its energy leaks onto the neighbor ring, which reads
// slightly wider than a click on a healthy grid. When the whole
// foreground fits inside the 1-cell neighborhood of a dead cell, the
// pattern is attributed to a click over the hole.
func ClassifyShapeDegraded(grid Grid, vals []float64, mask []bool, dead []bool) ShapeResult {
	var cells []int
	for i, m := range mask {
		if m {
			cells = append(cells, i)
		}
	}
	if len(cells) == 0 {
		return ShapeResult{}
	}

	// Weighted centroid and scatter in normalized coordinates.
	var wSum, cx, cy float64
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, i := range cells {
		x, y := grid.Norm(i)
		w := 1.0
		if vals != nil && vals[i] > 0 {
			w = vals[i]
		}
		wSum += w
		cx += w * x
		cy += w * y
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	cx /= wSum
	cy /= wSum

	var sxx, syy, sxy float64
	for _, i := range cells {
		x, y := grid.Norm(i)
		w := 1.0
		if vals != nil && vals[i] > 0 {
			w = vals[i]
		}
		dx, dy := x-cx, y-cy
		sxx += w * dx * dx
		syy += w * dy * dy
		sxy += w * dx * dy
	}
	sxx /= wSum
	syy /= wSum
	sxy /= wSum

	// Eigenvalues of the 2×2 scatter matrix.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	elong := math.Inf(1)
	if l2 > 1e-9 {
		elong = l1 / l2
	}

	// Pad the bounding box by half a cell pitch.
	padX, padY := 0.0, 0.0
	if grid.Cols > 1 {
		padX = 0.5 / float64(grid.Cols-1)
	}
	if grid.Rows > 1 {
		padY = 0.5 / float64(grid.Rows-1)
	}
	box := stroke.R(
		math.Max(0, minX-padX), math.Max(0, minY-padY),
		math.Min(1, maxX+padX), math.Min(1, maxY+padY),
	)

	res := ShapeResult{Box: box, Cells: cells, Elongation: elong, CenterX: cx, CenterY: cy, Ok: true}

	// Cell-count bounding box for the click test.
	minR, minC := grid.Rows, grid.Cols
	maxR, maxC := -1, -1
	for _, i := range cells {
		r, c := grid.RowCol(i)
		minR, maxR = min(minR, r), max(maxR, r)
		minC, maxC = min(minC, c), max(maxC, c)
	}
	wCells, hCells := maxC-minC+1, maxR-minR+1

	spread := math.Sqrt(math.Max(0, l1) + math.Max(0, l2))
	switch {
	case spread < clickSpread,
		len(cells) <= clickMaxCells && wCells <= 2 && hCells <= 2,
		clickOverDeadCell(grid, cells, dead):
		res.Shape = stroke.Click
	case elong >= lineElongation:
		// A straight stroke: bucket the principal-axis angle.
		angle := 0.5 * math.Atan2(2*sxy, sxx-syy) // in (-π/2, π/2]
		deg := angle * 180 / math.Pi
		switch {
		case math.Abs(deg) <= 22.5:
			res.Shape = stroke.Horizontal
		case math.Abs(deg) >= 67.5:
			res.Shape = stroke.Vertical
		case deg > 0:
			// Positive slope in y-up coordinates: "/".
			res.Shape = stroke.SlashUp
		default:
			res.Shape = stroke.SlashDown
		}
	default:
		// Bent foreground: an arc. The mass sits on the closed side —
		// left of the box centre for "⊂", right for "⊃".
		if cx <= box.CenterX() {
			res.Shape = stroke.ArcLeft
		} else {
			res.Shape = stroke.ArcRight
		}
	}
	return res
}

// clickOverDeadCell reports whether the foreground is a compact blob
// ringing a dead cell: some dead foreground cell has every other
// foreground cell within Chebyshev distance 1. A real stroke spans
// cells beyond any single tag's neighborhood, so this only fires on
// the ring a click leaves when its peak tag cannot answer.
func clickOverDeadCell(grid Grid, cells []int, dead []bool) bool {
	if dead == nil {
		return false
	}
	for _, d := range cells {
		if d >= len(dead) || !dead[d] {
			continue
		}
		dr, dc := grid.RowCol(d)
		compact := true
		for _, i := range cells {
			r, c := grid.RowCol(i)
			// Chebyshev distance via the builtin: |x| = max(x, -x).
			if max(r-dr, dr-r) > 1 || max(c-dc, dc-c) > 1 {
				compact = false
				break
			}
		}
		if compact {
			return true
		}
	}
	return false
}
