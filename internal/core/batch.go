package core

import "time"

// BatchResult pairs a detected span with its recognition.
type BatchResult struct {
	Span   Span
	Result MotionResult
}

// RecognizeStream runs offline recognition over a complete capture:
// segment the stream, then recognize each detected span. Spans whose
// windows fail recognition are still reported (Result.Ok false) so
// callers can count false positives.
func (p *Pipeline) RecognizeStream(readings []Reading, seg *Segmenter, start, end time.Duration) []BatchResult {
	if seg == nil {
		seg = NewSegmenter()
	}
	spans := seg.Segment(readings, p.Cal, start, end)
	out := make([]BatchResult, 0, len(spans))
	for _, sp := range spans {
		res := p.RecognizeWindow(window(readings, sp.Start, sp.End))
		out = append(out, BatchResult{Span: sp, Result: res})
	}
	return out
}
