package rf

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWavelength(t *testing.T) {
	// 922.38 MHz → ≈ 32.5 cm (§III-A quotes 320 mm).
	got := Wavelength(DefaultFrequencyHz)
	if !almostEq(got, 0.325, 0.001) {
		t.Errorf("Wavelength = %v m, want ≈0.325", got)
	}
	if got := Wavenumber(DefaultFrequencyHz); !almostEq(got, 2*math.Pi/0.325, 0.1) {
		t.Errorf("Wavenumber = %v", got)
	}
}

func TestPowerConversions(t *testing.T) {
	tests := []struct {
		dbm, mw float64
	}{
		{0, 1},
		{30, 1000},
		{-30, 0.001},
		{3, 1.9952623149688795},
	}
	for _, tt := range tests {
		if got := DBmToMilliwatt(tt.dbm); !almostEq(got, tt.mw, 1e-9*tt.mw) {
			t.Errorf("DBmToMilliwatt(%v) = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := MilliwattToDBm(tt.mw); !almostEq(got, tt.dbm, 1e-9) {
			t.Errorf("MilliwattToDBm(%v) = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
	if !math.IsInf(MilliwattToDBm(0), -1) {
		t.Error("MilliwattToDBm(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-1), -1) {
		t.Error("LinearToDB(-1) should be -Inf")
	}
}

func TestPowerRoundTripProperty(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200)
		return almostEq(MilliwattToDBm(DBmToMilliwatt(dbm)), dbm, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	lambda := Wavelength(DefaultFrequencyHz)
	// At 1 m and 915-ish MHz, FSPL ≈ 31.7 dB.
	got := FreeSpacePathLossDB(1, lambda)
	if !almostEq(got, 31.7, 0.3) {
		t.Errorf("FSPL(1m) = %v dB, want ≈31.7", got)
	}
	// Doubling distance adds 6 dB.
	d2 := FreeSpacePathLossDB(2, lambda)
	if !almostEq(d2-got, 6.02, 0.05) {
		t.Errorf("FSPL slope = %v dB per octave, want ≈6.02", d2-got)
	}
	// Near-field clamp keeps the gain finite and ≤ the clamp value.
	g0 := FreeSpacePathGain(0, lambda)
	if math.IsInf(g0, 1) || math.IsNaN(g0) {
		t.Error("path gain at d=0 not clamped")
	}
	if g0 != FreeSpacePathGain(lambda/8, lambda) {
		t.Error("distances below λ/4 should clamp to the same gain")
	}
}
