package rf

import (
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	"rfipad/internal/geo"
)

// TagPoint is the RF-relevant view of one tag the channel needs to
// compute an observation. The tag-model package fills it in from the
// deployment (position, per-type gain, coupling losses, hardware phase
// offset).
type TagPoint struct {
	// Pos is the tag's antenna centre.
	Pos geo.Vec3
	// GainDBi is the tag antenna gain (≈ 2 dBi for a typical dipole).
	GainDBi float64
	// ThetaTag is the phase rotation introduced by the tag's reflection
	// characteristic — the per-tag hardware diversity term of Eq. 6/7.
	ThetaTag float64
	// ExtraLossDB is additional one-way power loss from tag-to-tag
	// coupling/shadowing in the array (Fig. 11/12), in dB (≥ 0).
	ExtraLossDB float64
	// BackscatterLossDB is the modulation + RCS loss between the power
	// incident on the tag and the power it re-radiates, in dB (≥ 0).
	BackscatterLossDB float64
	// SensitivityDBm is the minimum incident power that turns the IC on.
	SensitivityDBm float64
}

// Scatterer is a moving object (hand, arm) that perturbs the channel.
type Scatterer struct {
	// Pos is the scatterer's current position.
	Pos geo.Vec3
	// Vel is its velocity (m/s), used for the Doppler estimate.
	Vel geo.Vec3
	// Reflectivity is the relative field reflection strength (0..1).
	// A hand is ≈ 0.5–0.7 at UHF.
	Reflectivity float64
	// ProximityRadius concentrates the reflected contribution onto
	// nearby tags: the reflection amplitude is scaled by
	// exp(−(d/R)²) with d the scatterer–tag distance. This captures
	// the paper's premise that the hand acts as a "powerful virtual
	// transmitter" only for the tags it is near (§III-A1); zero
	// disables the concentration.
	ProximityRadius float64
	// CouplingRadius is the distance scale (m) over which the scatterer
	// detunes a tag's antenna by near-field loading; λ/2π ≈ 5.2 cm for
	// the hand, matching the paper's "within 5 cm" working range.
	CouplingRadius float64
	// CouplingLossDB is the maximum extra backscatter loss (dB,
	// one-way) the loading causes when the scatterer touches the tag —
	// the RSS trough of §III-B.
	CouplingLossDB float64
	// HarvestRadius and HarvestLossDB model the harsher effect of the
	// detuning on power harvesting: a hand almost touching the tag
	// shifts its resonance enough to stop the IC powering up even
	// though the incident field barely changed. Only relevant within a
	// few centimetres.
	HarvestRadius float64
	HarvestLossDB float64
	// BlockRadius is the radius (m) around the scatterer's centre that
	// shadows a line-of-sight path passing through it.
	BlockRadius float64
	// BlockLossDB is the maximum attenuation (dB, one-way field) of a
	// blocked path.
	BlockLossDB float64
}

// Reflector is a static multipath source (wall, table, cabinet). Its
// contribution is constant in a truly static environment, but ambient
// activity (people walking by, doors, fans) slowly modulates the
// reflected energy, which is how "location diversity" (Fig. 5/16)
// enters the model. The modulation is an Ornstein–Uhlenbeck process:
// temporally correlated on JitterTau scales, so it looks like slow
// wander rather than white measurement noise.
type Reflector struct {
	// Pos is the reflection point.
	Pos geo.Vec3
	// Reflectivity is the relative field reflection strength (0..1).
	Reflectivity float64
	// Jitter is the stationary std-dev of the fractional amplitude
	// fluctuation (0..1).
	Jitter float64
	// JitterTau is the fluctuation correlation time; 0 selects
	// DefaultJitterTau.
	JitterTau time.Duration
	// FastJitter is the std-dev of an additional per-read white
	// fluctuation (fast fading near the reflector), 0..1.
	FastJitter float64
	// ProximityRadius, when positive, localizes the reflector's
	// influence to nearby tags (contribution × exp(−(d/R)²) with d the
	// reflector–tag distance). This models near-field clutter — a
	// metal table edge or wall right next to part of the plate — whose
	// effect is strong for the closest tags and negligible elsewhere,
	// the heterogeneity behind the paper's "location diversity".
	ProximityRadius float64
}

// DefaultJitterTau is the ambient-activity correlation time scale.
const DefaultJitterTau = 400 * time.Millisecond

// Observation is what the reader reports for one successful tag read —
// the exact quantity set of an Impinj Speedway tag report (§II-B).
type Observation struct {
	// PhaseRad is the reported phase in [0, 2π), quantized to
	// PhaseResolution.
	PhaseRad float64
	// RSSdBm is the received signal strength, quantized to
	// RSSResolution.
	RSSdBm float64
	// DopplerHz is the reported Doppler frequency shift.
	DopplerHz float64
	// ForwardPowerDBm is the power incident on the tag (not reported by
	// real readers; the MAC simulator uses it for the power-up check).
	ForwardPowerDBm float64
	// PoweredUp is whether the incident power exceeded the tag's
	// sensitivity; if false, the tag cannot respond at all.
	PoweredUp bool
}

// Reader-reporting quantization (§III-A: phase resolution 0.0015 rad;
// Impinj reports RSS in 0.5 dBm steps).
const (
	PhaseResolution = 0.0015
	RSSResolution   = 0.5
)

// QuantizePhase snaps a phase (radians) to the reader's reporting
// resolution, wrapped onto [0, 2π).
func QuantizePhase(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	return math.Round(t/PhaseResolution) * PhaseResolution
}

// QuantizeRSS snaps an RSS (dBm) to the reader's reporting resolution.
func QuantizeRSS(dbm float64) float64 {
	return math.Round(dbm/RSSResolution) * RSSResolution
}

// Channel computes tag observations for a fixed deployment. The zero
// value is not usable; construct with NewChannel.
type Channel struct {
	antenna    Antenna
	freqHz     float64
	lambda     float64
	txDBm      float64
	reflectors []Reflector
	// cableLossDB is the fixed loss between reader port and antenna.
	cableLossDB float64
	// thetaTR is the phase rotation of the reader's TX+RX circuits
	// (θ_T + θ_R of Eq. 6/7) — constant for a given reader.
	thetaTR float64
	// noiseFloorDBm is the effective interference-plus-noise floor at
	// the receiver; it sets the phase/RSS measurement noise via SNR.
	noiseFloorDBm float64
	// jitter holds the per-reflector Ornstein–Uhlenbeck fluctuation
	// state. A Channel is therefore NOT safe for concurrent use; give
	// each goroutine its own Channel.
	jitter []ouState
	// hopCarriers, when non-empty, frequency-hops the carrier across
	// this list every hopDwell.
	hopCarriers []float64
	hopDwell    time.Duration
}

// carrierAt resolves the active carrier frequency and wavelength for a
// stream time.
func (c *Channel) carrierAt(at time.Duration) (freqHz, lambda float64) {
	if len(c.hopCarriers) == 0 || c.hopDwell <= 0 {
		return c.freqHz, c.lambda
	}
	slot := int(at/c.hopDwell) % len(c.hopCarriers)
	if slot < 0 {
		slot += len(c.hopCarriers)
	}
	f := c.hopCarriers[slot]
	return f, Wavelength(f)
}

// ouState is one reflector's fluctuation process.
type ouState struct {
	at          time.Duration
	x           float64
	initialized bool
}

// jitterValue advances reflector r's OU process to time at and returns
// the fractional amplitude offset. With a nil rng the process is frozen
// at zero (deterministic observations).
func (c *Channel) jitterValue(r int, at time.Duration, rng *rand.Rand) float64 {
	refl := c.reflectors[r]
	if rng == nil || refl.Jitter <= 0 {
		return 0
	}
	tau := refl.JitterTau
	if tau <= 0 {
		tau = DefaultJitterTau
	}
	st := &c.jitter[r]
	if !st.initialized {
		st.x = rng.NormFloat64() * refl.Jitter
		st.at = at
		st.initialized = true
		return st.x
	}
	dt := at - st.at
	if dt < 0 {
		dt = 0
	}
	a := math.Exp(-dt.Seconds() / tau.Seconds())
	st.x = st.x*a + rng.NormFloat64()*refl.Jitter*math.Sqrt(1-a*a)
	st.at = at
	return st.x
}

// ChannelOption configures a Channel.
type ChannelOption func(*Channel)

// WithFrequency sets the carrier frequency in Hz (default 922.38 MHz).
func WithFrequency(hz float64) ChannelOption {
	return func(c *Channel) {
		c.freqHz = hz
		c.lambda = Wavelength(hz)
	}
}

// WithHopping makes the channel frequency-hop across the given carrier
// list with the given dwell time, as an FCC-regime reader must (the
// paper sidesteps this by operating on the fixed 922.38 MHz China-band
// carrier — §IV-A). Hopping changes λ every dwell, so each tag's phase
// centre jumps between channels; the ablation-hopping experiment
// quantifies what that does to a pipeline calibrated for one carrier.
func WithHopping(carriersHz []float64, dwell time.Duration) ChannelOption {
	return func(c *Channel) {
		c.hopCarriers = append([]float64(nil), carriersHz...)
		c.hopDwell = dwell
	}
}

// WithTxPower sets the reader transmit power in dBm (default 30, the
// paper's default; the legal maximum is 32.5).
func WithTxPower(dbm float64) ChannelOption {
	return func(c *Channel) { c.txDBm = dbm }
}

// WithReflectors sets the static multipath environment.
func WithReflectors(rs []Reflector) ChannelOption {
	return func(c *Channel) {
		c.reflectors = make([]Reflector, len(rs))
		copy(c.reflectors, rs)
		c.jitter = make([]ouState, len(rs))
	}
}

// WithNoiseFloor sets the effective interference-plus-noise floor in
// dBm (default −65.5, calibrated so the static phase std-dev matches
// Fig. 5).
func WithNoiseFloor(dbm float64) ChannelOption {
	return func(c *Channel) { c.noiseFloorDBm = dbm }
}

// WithReaderPhaseOffset sets θ_T+θ_R, the reader circuit phase rotation.
func WithReaderPhaseOffset(theta float64) ChannelOption {
	return func(c *Channel) { c.thetaTR = theta }
}

// WithCableLoss sets the fixed antenna cable loss in dB.
func WithCableLoss(db float64) ChannelOption {
	return func(c *Channel) { c.cableLossDB = db }
}

// NewChannel builds a channel model for one reader antenna.
func NewChannel(antenna Antenna, opts ...ChannelOption) *Channel {
	c := &Channel{
		antenna:       antenna,
		freqHz:        DefaultFrequencyHz,
		lambda:        Wavelength(DefaultFrequencyHz),
		txDBm:         30,
		thetaTR:       1.234, // arbitrary fixed circuit rotation
		noiseFloorDBm: -65.5,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// TxPowerDBm returns the configured transmit power.
func (c *Channel) TxPowerDBm() float64 { return c.txDBm }

// Lambda returns the carrier wavelength in metres.
func (c *Channel) Lambda() float64 { return c.lambda }

// Antenna returns the reader antenna this channel uses.
func (c *Channel) Antenna() Antenna { return c.antenna }

// pathBlockage returns the linear one-way field attenuation (0..1] of
// the a→b path caused by the scatterers' bodies.
func pathBlockage(a, b geo.Vec3, scs []Scatterer) float64 {
	att := 1.0
	ab := b.Sub(a)
	l2 := ab.NormSq()
	for _, s := range scs {
		if s.BlockRadius <= 0 || s.BlockLossDB <= 0 {
			continue
		}
		// Distance from the scatterer to the segment a–b.
		var d float64
		if l2 == 0 {
			d = s.Pos.Dist(a)
		} else {
			t := s.Pos.Sub(a).Dot(ab) / l2
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			d = s.Pos.Dist(a.Add(ab.Scale(t)))
		}
		x := d / s.BlockRadius
		lossDB := s.BlockLossDB * math.Exp(-x*x)
		att *= math.Pow(10, -lossDB/20)
	}
	return att
}

// forwardField returns the complex field amplitude arriving at the tag,
// normalized so that |E|² is the incident power in milliwatts, plus the
// dominant moving-scatterer path length (for Doppler).
func (c *Channel) forwardField(tag TagPoint, scs []Scatterer, rng *rand.Rand, at time.Duration) (e complex128, movingPath float64, movingVel float64) {
	freq, lambda := c.carrierAt(at)
	k := Wavenumber(freq)
	gr := c.antenna.GainTowards(tag.Pos)
	gt := DBToLinear(tag.GainDBi)
	ptx := DBmToMilliwatt(c.txDBm - c.cableLossDB)

	d := c.antenna.Pos.Dist(tag.Pos)
	directAmp := math.Sqrt(ptx * gr * gt * FreeSpacePathGain(d, lambda))
	directAmp *= pathBlockage(c.antenna.Pos, tag.Pos, scs)
	e = complex(directAmp, 0) * cmplx.Exp(complex(0, -k*d))

	// Static multipath: reader → reflector → tag, with the ambient
	// slow fluctuation of each reflector applied.
	for ri, r := range c.reflectors {
		d1 := c.antenna.Pos.Dist(r.Pos)
		d2 := r.Pos.Dist(tag.Pos)
		amp := math.Sqrt(ptx*c.antenna.GainTowards(r.Pos)*gt) *
			r.Reflectivity * math.Sqrt(FreeSpacePathGain(d1+d2, lambda))
		if r.ProximityRadius > 0 {
			x := d2 / r.ProximityRadius
			amp *= math.Exp(-x * x)
		}
		fluct := 1 + c.jitterValue(ri, at, rng)
		if rng != nil && r.FastJitter > 0 {
			fluct += rng.NormFloat64() * r.FastJitter
		}
		amp *= fluct
		e += complex(amp, 0) * cmplx.Exp(complex(0, -k*(d1+d2)))
	}

	// Moving scatterers: reader → scatterer → tag reflection path.
	for _, s := range scs {
		if s.Reflectivity <= 0 {
			continue
		}
		d1 := c.antenna.Pos.Dist(s.Pos)
		d2 := s.Pos.Dist(tag.Pos)
		amp := math.Sqrt(ptx*c.antenna.GainTowards(s.Pos)*gt) *
			s.Reflectivity * math.Sqrt(FreeSpacePathGain(d1+d2, lambda))
		if s.ProximityRadius > 0 {
			x := d2 / s.ProximityRadius
			amp *= math.Exp(-x * x)
		}
		e += complex(amp, 0) * cmplx.Exp(complex(0, -k*(d1+d2)))
		if pl := d1 + d2; pl > 0 {
			// Radial velocity along the reflected path.
			u1 := s.Pos.Sub(c.antenna.Pos).Unit()
			u2 := s.Pos.Sub(tag.Pos).Unit()
			movingPath = pl
			movingVel = s.Vel.Dot(u1) + s.Vel.Dot(u2)
		}
	}
	return e, movingPath, movingVel
}

// nearFieldLossDB returns the extra one-way backscatter loss (dB)
// caused by scatterers detuning the tag antenna when very close (the
// loading that produces the reliable RSS trough of §III-B and the
// ≤5 cm working range of §VI).
func nearFieldLossDB(tag TagPoint, scs []Scatterer) float64 {
	var loss float64
	for _, s := range scs {
		if s.CouplingRadius <= 0 || s.CouplingLossDB <= 0 {
			continue
		}
		x := s.Pos.Dist(tag.Pos) / s.CouplingRadius
		loss += s.CouplingLossDB * math.Exp(-x*x)
	}
	return loss
}

// harvestLossDB returns the additional power-harvesting loss (dB) from
// resonance detuning — it can stop the IC from powering up even when
// the incident field is strong.
func harvestLossDB(tag TagPoint, scs []Scatterer) float64 {
	var loss float64
	for _, s := range scs {
		if s.HarvestRadius <= 0 || s.HarvestLossDB <= 0 {
			continue
		}
		x := s.Pos.Dist(tag.Pos) / s.HarvestRadius
		loss += s.HarvestLossDB * math.Exp(-x*x)
	}
	return loss
}

// Observe computes one read at stream time zero; see ObserveAt.
func (c *Channel) Observe(tag TagPoint, scs []Scatterer, rng *rand.Rand) Observation {
	return c.ObserveAt(tag, scs, rng, 0)
}

// ObserveAt computes one read of the given tag with the given moving
// scatterers present, at the given stream time (which drives the
// ambient multipath fluctuation processes). rng supplies the
// measurement noise and jitter; passing nil yields the noiseless
// expected observation (useful for tests and for the
// theoretical-analysis benchmarks).
func (c *Channel) ObserveAt(tag TagPoint, scs []Scatterer, rng *rand.Rand, at time.Duration) Observation {
	eFwd, movPath, movVel := c.forwardField(tag, scs, rng, at)

	// Near-field loading reduces both the harvested power and the
	// re-radiated power.
	loadDB := nearFieldLossDB(tag, scs)
	couplingDB := tag.ExtraLossDB + loadDB

	fwdPowerDBm := MilliwattToDBm(real(eFwd)*real(eFwd)+imag(eFwd)*imag(eFwd)) - couplingDB - harvestLossDB(tag, scs)
	powered := fwdPowerDBm >= tag.SensitivityDBm

	// Reverse link: by reciprocity the tag→reader one-way channel g
	// equals E_fwd/√P_tx, so the measured baseband power is
	// |g|²·P_fwd = |E_fwd|⁴/P_tx, with the backscatter, coupling, and
	// tag/circuit phase rotations applied.
	ptx := DBmToMilliwatt(c.txDBm - c.cableLossDB)
	h := eFwd * eFwd / complex(math.Sqrt(ptx), 0)
	lossDB := tag.BackscatterLossDB + 2*couplingDB
	h *= complex(math.Pow(10, -lossDB/20), 0)
	h *= cmplx.Exp(complex(0, -(tag.ThetaTag + c.thetaTR)))

	rssMw := real(h)*real(h) + imag(h)*imag(h)
	rssDBm := MilliwattToDBm(rssMw)

	// Measurement noise: complex AWGN at the receiver with the
	// configured floor; phase noise σ ≈ 1/√(2·SNR), RSS noise from the
	// same SNR.
	phase := -cmplx.Phase(h) // reader measures the conjugate rotation
	snr := DBToLinear(rssDBm - c.noiseFloorDBm)
	if rng != nil && snr > 0 {
		sigmaPhase := 1 / math.Sqrt(2*snr)
		if sigmaPhase > math.Pi {
			sigmaPhase = math.Pi
		}
		phase += rng.NormFloat64() * sigmaPhase
		// RSS estimate error ≈ 10/ln10 · relative power error.
		sigmaRSS := 10 / math.Ln10 / math.Sqrt(snr)
		rssDBm += rng.NormFloat64() * sigmaRSS
	}

	doppler := 0.0
	if movPath > 0 {
		_, lambda := c.carrierAt(at)
		doppler = -movVel / lambda
	}
	if rng != nil {
		// The paper observes Doppler is dominated by noise (Fig. 2a).
		doppler += rng.NormFloat64() * 0.7
	}

	return Observation{
		PhaseRad:        QuantizePhase(phase),
		RSSdBm:          QuantizeRSS(rssDBm),
		DopplerHz:       doppler,
		ForwardPowerDBm: fwdPowerDBm,
		PoweredUp:       powered,
	}
}
