package rf

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/dsp"
	"rfipad/internal/geo"
)

func testTag(pos geo.Vec3) TagPoint {
	return TagPoint{
		Pos:               pos,
		GainDBi:           2,
		ThetaTag:          0.7,
		BackscatterLossDB: 15,
		SensitivityDBm:    -14,
	}
}

func handAt(pos geo.Vec3) Scatterer {
	return Scatterer{
		Pos:             pos,
		Reflectivity:    0.6,
		ProximityRadius: 0.07,
		CouplingRadius:  0.052,
		CouplingLossDB:  8,
		BlockRadius:     0.05,
		BlockLossDB:     10,
	}
}

func TestLinkBudgetAnchor(t *testing.T) {
	// §IV-B1: a single tag 2 m from the antenna reads ≈ −41 dBm.
	ch := NewChannel(testAntenna())
	tag := testTag(geo.V(0, 0, -1.5)) // 2 m from antenna at z=0.5
	obs := ch.Observe(tag, nil, nil)
	if !almostEq(obs.RSSdBm, -41, 3) {
		t.Errorf("RSS at 2 m = %v dBm, want ≈ −41", obs.RSSdBm)
	}
	if !obs.PoweredUp {
		t.Error("tag at 2 m should power up at 30 dBm")
	}
}

func TestObserveNoiselessDeterministic(t *testing.T) {
	ch := NewChannel(testAntenna())
	tag := testTag(geo.V(0.05, 0.05, 0))
	a := ch.Observe(tag, nil, nil)
	b := ch.Observe(tag, nil, nil)
	if a != b {
		t.Errorf("noiseless observations differ: %+v vs %+v", a, b)
	}
	if a.PhaseRad < 0 || a.PhaseRad >= 2*math.Pi+PhaseResolution {
		t.Errorf("phase out of range: %v", a.PhaseRad)
	}
}

func TestPhaseTracksPathLength(t *testing.T) {
	// Moving the tag λ/2 farther adds 2π to the round-trip phase:
	// the observation is unchanged (mod quantization).
	ch := NewChannel(testAntenna())
	lambda := ch.Lambda()
	t1 := testTag(geo.V(0, 0, -0.5)) // 1 m below antenna, on boresight
	t2 := testTag(geo.V(0, 0, -0.5-lambda/2))
	o1 := ch.Observe(t1, nil, nil)
	o2 := ch.Observe(t2, nil, nil)
	dp := math.Abs(dsp.WrapSigned(o1.PhaseRad - o2.PhaseRad))
	if dp > 0.01 {
		t.Errorf("phase differs by %v after λ/2 shift, want ≈0", dp)
	}
	// A λ/8 shift gives π/2 phase change.
	t3 := testTag(geo.V(0, 0, -0.5-lambda/8))
	o3 := ch.Observe(t3, nil, nil)
	dp3 := math.Abs(dsp.WrapSigned(o3.PhaseRad - o1.PhaseRad))
	if !almostEq(dp3, math.Pi/2, 0.05) {
		t.Errorf("phase change for λ/8 = %v, want π/2", dp3)
	}
}

func TestTagDiversityShiftsPhase(t *testing.T) {
	// Two tags at the same location with different θ_tag report
	// different phases — the hardware diversity of Eq. 6/7.
	ch := NewChannel(testAntenna())
	a := testTag(geo.V(0, 0, 0))
	b := a
	b.ThetaTag = a.ThetaTag + 1.0
	oa := ch.Observe(a, nil, nil)
	ob := ch.Observe(b, nil, nil)
	dp := math.Abs(dsp.WrapSigned(ob.PhaseRad - oa.PhaseRad))
	if !almostEq(dp, 1.0, 0.01) {
		t.Errorf("θ_tag shift = %v, want 1.0", dp)
	}
}

func TestHandCausesRSSTrough(t *testing.T) {
	// As the hand sweeps over a tag, RSS dips exactly when overhead
	// (§III-B: "always a distinct trough").
	ch := NewChannel(testAntenna())
	tag := testTag(geo.V(0, 0, 0))
	baseline := ch.Observe(tag, nil, nil).RSSdBm

	minRSS := math.Inf(1)
	minX := math.NaN()
	for x := -0.3; x <= 0.3; x += 0.01 {
		h := handAt(geo.V(x, 0, 0.03))
		rss := ch.Observe(tag, []Scatterer{h}, nil).RSSdBm
		if rss < minRSS {
			minRSS, minX = rss, x
		}
	}
	if math.Abs(minX) > 0.05 {
		t.Errorf("RSS trough at x=%v, want ≈0 (over the tag)", minX)
	}
	if baseline-minRSS < 5 {
		t.Errorf("trough depth = %v dB, want > 5", baseline-minRSS)
	}
}

func TestHandPhaseDisturbanceStrongestAtNearestTag(t *testing.T) {
	// Eq. 1–5: sweeping over tag T1 accumulates more phase variation at
	// T1 than at a tag T2 sitting off the trajectory (two columns away,
	// as in Fig. 3's y-axis argument).
	ch := NewChannel(testAntenna())
	t1 := testTag(geo.V(0, 0, 0))
	t2 := testTag(geo.V(0, 0.12, 0))
	t2.ThetaTag = 2.2

	var p1, p2 []float64
	for x := -0.15; x <= 0.15; x += 0.004 {
		h := handAt(geo.V(x, 0, 0.04))
		h.Pos.Y = 0
		p1 = append(p1, ch.Observe(t1, []Scatterer{h}, nil).PhaseRad)
		p2 = append(p2, ch.Observe(t2, []Scatterer{h}, nil).PhaseRad)
	}
	tv1 := dsp.TotalVariation(dsp.Unwrap(p1))
	tv2 := dsp.TotalVariation(dsp.Unwrap(p2))
	if tv1 <= tv2 {
		t.Errorf("accumulated phase: near tag %v <= far tag %v", tv1, tv2)
	}
}

func TestNearFieldLoadingCanKillPowerUp(t *testing.T) {
	ch := NewChannel(testAntenna(), WithTxPower(15))
	tag := testTag(geo.V(0, 0, 0))
	tag.SensitivityDBm = -5
	tag.ExtraLossDB = 3 // array shadowing
	clear := ch.Observe(tag, nil, nil)
	h := handAt(geo.V(0, 0, 0.01)) // hand almost touching
	loaded := ch.Observe(tag, []Scatterer{h}, nil)
	if !clear.PoweredUp {
		t.Fatal("tag should power up without the hand")
	}
	if loaded.PoweredUp {
		t.Error("heavy near-field loading at low TX power should cut power-up")
	}
}

func TestBlockageAttenuatesLOSPath(t *testing.T) {
	ch := NewChannel(testAntenna())
	tag := testTag(geo.V(0, 0, 0))
	// Arm square in the middle of the antenna→tag segment.
	arm := Scatterer{
		Pos:         geo.V(0, 0, 0.25),
		BlockRadius: 0.06,
		BlockLossDB: 10,
	}
	clear := ch.Observe(tag, nil, nil)
	blocked := ch.Observe(tag, []Scatterer{arm}, nil)
	if clear.RSSdBm-blocked.RSSdBm < 10 {
		t.Errorf("blockage reduced RSS by only %v dB", clear.RSSdBm-blocked.RSSdBm)
	}
}

func TestNoiseSeedsReproducible(t *testing.T) {
	ch := NewChannel(testAntenna())
	tag := testTag(geo.V(0.05, 0, 0))
	o1 := ch.Observe(tag, nil, rand.New(rand.NewSource(9)))
	o2 := ch.Observe(tag, nil, rand.New(rand.NewSource(9)))
	if o1 != o2 {
		t.Error("same seed produced different observations")
	}
	o3 := ch.Observe(tag, nil, rand.New(rand.NewSource(10)))
	if o1 == o3 {
		t.Error("different seeds produced identical noisy observations")
	}
}

func TestStaticPhaseStdSmall(t *testing.T) {
	// Static scenario: phase jitter should be small (Fig. 5 shows
	// σ ≈ 0.02–0.1 rad depending on location).
	ch := NewChannel(testAntenna())
	tag := testTag(geo.V(0.05, 0.05, 0))
	rng := rand.New(rand.NewSource(1))
	var phases []float64
	for i := 0; i < 200; i++ {
		phases = append(phases, ch.Observe(tag, nil, rng).PhaseRad)
	}
	sd := dsp.CircularStd(phases)
	if sd <= 0 || sd > 0.15 {
		t.Errorf("static phase std = %v rad, want small but nonzero", sd)
	}
}

func TestReflectorsRaiseJitter(t *testing.T) {
	// Location diversity: a strong jittery reflector near the tag
	// raises its static phase std-dev (Fig. 5's deviation bias).
	quiet := NewChannel(testAntenna())
	noisy := NewChannel(testAntenna(), WithReflectors([]Reflector{{
		Pos:          geo.V(0.4, 0.2, 0.1),
		Reflectivity: 0.5,
		Jitter:       0.15,
	}}))
	tag := testTag(geo.V(0.05, 0.05, 0))
	measure := func(ch *Channel, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var phases []float64
		for i := 0; i < 300; i++ {
			at := time.Duration(i) * 60 * time.Millisecond
			phases = append(phases, ch.ObserveAt(tag, nil, rng, at).PhaseRad)
		}
		return dsp.CircularStd(phases)
	}
	if sq, sn := measure(quiet, 3), measure(noisy, 3); sn <= sq {
		t.Errorf("reflector jitter did not raise phase std: %v <= %v", sn, sq)
	}
}

func TestQuantizers(t *testing.T) {
	if got := QuantizePhase(0.00149); !almostEq(got, 0.0015, 1e-12) {
		t.Errorf("QuantizePhase = %v", got)
	}
	if got := QuantizePhase(-0.001); got < 0 || got >= 2*math.Pi {
		t.Errorf("QuantizePhase range = %v", got)
	}
	if got := QuantizeRSS(-41.26); !almostEq(got, -41.5, 1e-12) {
		t.Errorf("QuantizeRSS = %v", got)
	}
	if got := QuantizeRSS(-41.24); !almostEq(got, -41.0, 1e-12) {
		t.Errorf("QuantizeRSS = %v", got)
	}
}

func TestChannelOptions(t *testing.T) {
	ch := NewChannel(testAntenna(),
		WithTxPower(20),
		WithFrequency(915e6),
		WithNoiseFloor(-70),
		WithCableLoss(1.5),
		WithReaderPhaseOffset(0.3),
	)
	if ch.TxPowerDBm() != 20 {
		t.Errorf("TxPowerDBm = %v", ch.TxPowerDBm())
	}
	if !almostEq(ch.Lambda(), Wavelength(915e6), 1e-12) {
		t.Errorf("Lambda = %v", ch.Lambda())
	}
	if got := ch.Antenna().GainDBi; got != DefaultAntennaGainDBi {
		t.Errorf("Antenna gain = %v", got)
	}
}

func TestLowerTxPowerLowersRSSAndForwardPower(t *testing.T) {
	tag := testTag(geo.V(0, 0, 0))
	hi := NewChannel(testAntenna(), WithTxPower(32.5)).Observe(tag, nil, nil)
	lo := NewChannel(testAntenna(), WithTxPower(15)).Observe(tag, nil, nil)
	if !almostEq(hi.RSSdBm-lo.RSSdBm, 17.5, 1) {
		// RSS scales 1:1 with TX power in a backscatter link (the tag
		// re-radiates a fixed fraction of what it receives).
		t.Errorf("RSS delta = %v dB, want ≈17.5", hi.RSSdBm-lo.RSSdBm)
	}
	if !almostEq(hi.ForwardPowerDBm-lo.ForwardPowerDBm, 17.5, 0.1) {
		t.Errorf("forward delta = %v dB, want 17.5", hi.ForwardPowerDBm-lo.ForwardPowerDBm)
	}
}

func TestHoppingChangesPhaseAcrossDwells(t *testing.T) {
	// Frequency hopping changes λ, so a tag's reported phase jumps
	// between dwells even though nothing moved — the §IV-A reason the
	// paper fixes the carrier.
	carriers := []float64{902.75e6, 915.25e6, 927.25e6}
	ch := NewChannel(testAntenna(), WithHopping(carriers, 200*time.Millisecond))
	tag := testTag(geo.V(0.05, 0.05, 0))
	o1 := ch.ObserveAt(tag, nil, nil, 0)
	o2 := ch.ObserveAt(tag, nil, nil, 210*time.Millisecond)
	o3 := ch.ObserveAt(tag, nil, nil, 620*time.Millisecond) // back to carrier 0
	if d := math.Abs(dsp.WrapSigned(o1.PhaseRad - o2.PhaseRad)); d < 0.1 {
		t.Errorf("phase barely moved across a hop: %v", d)
	}
	if d := math.Abs(dsp.WrapSigned(o1.PhaseRad - o3.PhaseRad)); d > 0.02 {
		t.Errorf("same carrier should reproduce the phase: %v", d)
	}
	// Without hopping the phase is dwell-independent.
	fixed := NewChannel(testAntenna())
	f1 := fixed.ObserveAt(tag, nil, nil, 0)
	f2 := fixed.ObserveAt(tag, nil, nil, 210*time.Millisecond)
	if f1.PhaseRad != f2.PhaseRad {
		t.Error("fixed carrier phase changed over time")
	}
}
