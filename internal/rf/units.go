// Package rf models the UHF backscatter radio channel RFIPad operates
// over: the forward (reader→tag) and reverse (tag→reader) link budgets,
// an idealized directional reader antenna, environment multipath, the
// moving hand as a scatterer, receiver noise, and the phase/RSS
// quantization of a commodity reader (Impinj Speedway class).
//
// The paper's prototype is real hardware; this package is the simulation
// substitute (see DESIGN.md §2). Its constants are calibrated so the
// static-scenario statistics (Fig. 2, 4, 5) and link budget anchors
// (≈ −41 dBm tag RSS at 2 m, §IV-B1) match the paper.
package rf

import "math"

// SpeedOfLight is the propagation speed used for wavelength conversion
// (m/s).
const SpeedOfLight = 2.99792458e8

// DefaultFrequencyHz is the carrier RFIPad operates on (§IV-A).
const DefaultFrequencyHz = 922.38e6

// Wavelength returns the carrier wavelength in metres for a frequency in
// hertz.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// Wavenumber returns 2π/λ for a frequency in hertz.
func Wavenumber(freqHz float64) float64 { return 2 * math.Pi / Wavelength(freqHz) }

// DBmToMilliwatt converts a power level in dBm to milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts a power level in milliwatts to dBm.
// Non-positive powers map to -Inf.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DBToLinear converts a power ratio in dB to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB; non-positive ratios
// map to -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// FreeSpacePathGain returns the one-way free-space power gain
// (λ/4πd)² as a linear ratio. d and λ in metres; d is clamped to a
// quarter wavelength to keep the near field finite.
func FreeSpacePathGain(d, lambda float64) float64 {
	min := lambda / 4
	if d < min {
		d = min
	}
	r := lambda / (4 * math.Pi * d)
	return r * r
}

// FreeSpacePathLossDB returns the one-way free-space path loss in dB
// (a positive number for d > λ/4π).
func FreeSpacePathLossDB(d, lambda float64) float64 {
	return -LinearToDB(FreeSpacePathGain(d, lambda))
}
