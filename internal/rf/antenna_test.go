package rf

import (
	"math"
	"testing"

	"rfipad/internal/geo"
)

func testAntenna() Antenna {
	return Antenna{
		Pos:       geo.V(0, 0, 0.5),
		Boresight: geo.V(0, 0, -1),
		GainDBi:   DefaultAntennaGainDBi,
	}
}

func TestBeamAngleMatchesPaper(t *testing.T) {
	// §IV-B3: √(4π/8 dBi) ≈ 72° for the prototype antenna. (The paper
	// plugs in the linear gain ≈ 6.31.)
	a := testAntenna()
	deg := a.BeamAngleRad() * 180 / math.Pi
	if !almostEq(deg, 80.9, 1.5) {
		// √(4π/6.31) = 1.411 rad = 80.9°; the paper rounds to 72° by
		// using G = 8 linear. We follow the physics (dBi → linear).
		t.Errorf("beam angle = %v°, want ≈80.9°", deg)
	}
}

func TestGainTowardsPattern(t *testing.T) {
	a := testAntenna()
	peak := a.GainTowards(geo.V(0, 0, 0)) // straight down the boresight
	if !almostEq(LinearToDB(peak), a.GainDBi, 1e-9) {
		t.Errorf("boresight gain = %v dBi, want %v", LinearToDB(peak), a.GainDBi)
	}
	// At half the beam angle off boresight, gain is −3 dB.
	half := a.BeamAngleRad() / 2
	off := geo.V(0.5*math.Tan(half), 0, 0) // at z=0, 0.5 below antenna
	gOff := a.GainTowards(off)
	if !almostEq(LinearToDB(gOff), a.GainDBi-3, 0.05) {
		t.Errorf("gain at θ_beam/2 = %v dBi, want %v", LinearToDB(gOff), a.GainDBi-3)
	}
	// Gain decreases monotonically with off-axis angle.
	prev := math.Inf(1)
	for x := 0.0; x < 2; x += 0.1 {
		g := a.GainTowards(geo.V(x, 0, 0))
		if g > prev+1e-12 {
			t.Fatalf("gain not monotone at x=%v", x)
		}
		prev = g
	}
}

func TestMinPlaneDistance(t *testing.T) {
	a := testAntenna()
	// §IV-B3: l = 46 cm, d = (l/2)/tan(θ_beam/2) ≈ 31.7 cm with the
	// paper's 72° beam. With our 80.9° beam the same formula gives
	// ≈ 27 cm; verify the formula rather than the paper's rounding.
	got := a.MinPlaneDistance(0.46)
	want := 0.23 / math.Tan(a.BeamAngleRad()/2)
	if !almostEq(got, want, 1e-9) {
		t.Errorf("MinPlaneDistance = %v, want %v", got, want)
	}
	if got < 0.2 || got > 0.35 {
		t.Errorf("MinPlaneDistance = %v m, expected in the ~0.2–0.35 m range", got)
	}
	// The paper's exact arithmetic: a 72° beam gives 31.7 cm.
	paperBeam := Antenna{GainDBi: LinearToDB(4 * math.Pi / (1.2566 * 1.2566))} // beam = 1.2566 rad = 72°
	if d := paperBeam.MinPlaneDistance(0.46); !almostEq(d, 0.3166, 0.003) {
		t.Errorf("paper geometry d = %v, want ≈0.317", d)
	}
}

func TestReadRange(t *testing.T) {
	a := testAntenna()
	lambda := Wavelength(DefaultFrequencyHz)
	r := a.ReadRange(30, 2, -14, lambda)
	// 30+8+2+14 = 54 dB budget → d = λ/4π·10^2.7 ≈ 13 m: a typical
	// UHF read range at full power.
	if r < 5 || r > 30 {
		t.Errorf("ReadRange = %v m, want single-digit-to-tens of metres", r)
	}
	// Higher sensitivity (less negative) shrinks the range.
	r2 := a.ReadRange(30, 2, -5, lambda)
	if r2 >= r {
		t.Errorf("less sensitive tag should have shorter range: %v >= %v", r2, r)
	}
	// Exhausted budget → zero range.
	if got := a.ReadRange(-40, 0, 0, lambda); got != 0 {
		t.Errorf("ReadRange with no budget = %v, want 0", got)
	}
}
