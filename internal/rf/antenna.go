package rf

import (
	"math"

	"rfipad/internal/geo"
)

// Antenna is an idealized directional reader antenna (§IV-B3 of the
// paper). The radiation pattern is the solid-angle approximation the
// paper uses: a gain G antenna concentrates its power into a beam of
// angle θ_beam ≈ √(4π/G) (Eq. 14); within the pattern we use a Gaussian
// roll-off whose −3 dB width matches θ_beam.
type Antenna struct {
	// Pos is the phase centre of the antenna.
	Pos geo.Vec3
	// Boresight is the direction of maximum gain (normalized on use).
	Boresight geo.Vec3
	// GainDBi is the peak gain over isotropic. The paper's Laird
	// A9028R30NF panel is 8 dBi.
	GainDBi float64
}

// DefaultAntennaGainDBi matches the paper's Laird A9028R30NF panel.
const DefaultAntennaGainDBi = 8

// BeamAngleRad returns the full beam angle θ_beam ≈ √(4π/G) (Eq. 14),
// in radians. For the 8 dBi prototype antenna this is ≈ 72°.
func (a Antenna) BeamAngleRad() float64 {
	g := DBToLinear(a.GainDBi)
	return math.Sqrt(4 * math.Pi / g)
}

// GainTowards returns the linear power gain of the antenna in the
// direction of point p. The pattern is G·exp(−k·θ²) with k chosen so
// the gain is −3 dB at θ_beam/2 from boresight.
func (a Antenna) GainTowards(p geo.Vec3) float64 {
	dir := p.Sub(a.Pos)
	theta := dir.AngleTo(a.Boresight)
	half := a.BeamAngleRad() / 2
	if half <= 0 {
		return DBToLinear(a.GainDBi)
	}
	// exp(−k·half²) = 10^(−0.3) → k = 0.3·ln10 / half².
	k := 0.3 * math.Ln10 / (half * half)
	return DBToLinear(a.GainDBi) * math.Exp(-k*theta*theta)
}

// MinPlaneDistance returns the minimum distance between the antenna
// panel and a square tag plane of side planeLen so that the whole plane
// sits inside the 3 dB beam (§IV-B3: d = (l/2)/tan(θ_beam/2); with the
// 72° beam, tan 36°, giving ≈ 31.7 cm for the 46 cm prototype plane).
func (a Antenna) MinPlaneDistance(planeLen float64) float64 {
	half := a.BeamAngleRad() / 2
	t := math.Tan(half)
	if t <= 0 {
		return math.Inf(1)
	}
	return planeLen / 2 / t
}

// ReadRange returns the maximum forward-link distance R_max at which a
// tag with the given sensitivity (dBm) and gain (dBi) can still power
// up, along the boresight, for a transmit power txDBm and wavelength
// lambda. Passive RFID systems are forward-link limited (§IV-B3), so
// this bounds the read zone.
func (a Antenna) ReadRange(txDBm, tagGainDBi, tagSensitivityDBm, lambda float64) float64 {
	// P_tag = P_tx + G_r + G_t − FSPL(d) ≥ sensitivity.
	budget := txDBm + a.GainDBi + tagGainDBi - tagSensitivityDBm
	if budget <= 0 {
		return 0
	}
	// FSPL(d) = 20·log10(4πd/λ) → d = λ/(4π)·10^(budget/20).
	return lambda / (4 * math.Pi) * math.Pow(10, budget/20)
}
