// Command rfipad-readerd is the reader daemon: it plays the role of
// the Impinj reader + its host link in the paper's setup (§IV-A). It
// simulates a full RFIPad deployment — a 3 s static prelude for
// calibration followed by a writer air-writing a word — and streams
// the resulting tag reports to connected backends over the LLRP-style
// TCP protocol in internal/llrp.
//
// Usage:
//
//	rfipad-readerd -listen 127.0.0.1:5084 -word HELLO -speed 4
//
// Pair it with rfipad-live, which connects, calibrates from the
// prelude, and recognizes the strokes online.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rfipad"
	"rfipad/internal/llrp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen = flag.String("listen", "127.0.0.1:5084", "TCP listen address")
		word   = flag.String("word", "HI", "word the simulated writer performs")
		seed   = flag.Int64("seed", 1, "simulation seed")
		speed  = flag.Float64("speed", 1, "replay speed factor (higher = faster than real time)")
		batch  = flag.Duration("batch", 50*time.Millisecond, "report batching window")
		once   = flag.Bool("once", false, "exit after the first client finishes")
	)
	flag.Parse()
	if *speed <= 0 {
		fmt.Fprintln(os.Stderr, "speed must be positive")
		return 2
	}

	reports, err := synthesize(*seed, strings.ToUpper(*word))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("synthesized %d reports covering %v (word %q)\n",
		len(reports), reports[len(reports)-1].Timestamp.Round(time.Millisecond), strings.ToUpper(*word))

	done := make(chan struct{}, 1)
	srv := llrp.NewServer(func() llrp.ReportSource {
		return &pacedSource{
			reports: reports,
			batch:   *batch,
			speed:   *speed,
			done:    done,
		}
	})
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("listening on %s\n", l.Addr())
	if *once {
		go func() {
			<-done
			// Give the completion event time to flush.
			time.Sleep(200 * time.Millisecond)
			srv.Close()
		}()
	}
	if err := srv.Serve(l); err != nil && !isClosed(err) {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func isClosed(err error) bool {
	return strings.Contains(err.Error(), "use of closed network connection") ||
		strings.Contains(err.Error(), "closed")
}

// synthesize builds the full capture: static prelude + the word.
func synthesize(seed int64, word string) ([]llrp.TagReport, error) {
	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	var reports []llrp.TagReport
	add := func(rs []rfipad.Reading, offset time.Duration) time.Duration {
		end := offset
		for _, r := range rs {
			ts := offset + r.Time
			reports = append(reports, llrp.TagReport{
				EPC:       r.EPC,
				AntennaID: 1,
				PhaseRad:  r.Phase,
				RSSdBm:    r.RSS,
				DopplerHz: r.Doppler,
				Timestamp: ts,
			})
			if ts > end {
				end = ts
			}
		}
		return end
	}
	offset := add(sim.CollectStatic(3*time.Second), 0)
	for i, ch := range word {
		rs, _, err := sim.WriteLetter(ch, seed*100+int64(i))
		if err != nil {
			return nil, err
		}
		// A couple of quiet seconds between letters so the online
		// recognizer can close each one.
		offset = add(rs, offset+2*time.Second)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Timestamp < reports[j].Timestamp })
	return reports, nil
}

// pacedSource replays the synthesized reports in batches at the
// configured speed.
type pacedSource struct {
	reports []llrp.TagReport
	batch   time.Duration
	speed   float64

	mu      sync.Mutex
	pos     int
	started time.Time
	done    chan struct{}
}

// Next implements llrp.ReportSource.
func (s *pacedSource) Next() ([]llrp.TagReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.reports) {
		select {
		case s.done <- struct{}{}:
		default:
		}
		return nil, false
	}
	if s.started.IsZero() {
		s.started = time.Now()
	}
	// Pace: wait until the batch's stream time has elapsed in scaled
	// wall time.
	cut := s.reports[s.pos].Timestamp + s.batch
	wait := time.Duration(float64(cut)/s.speed) - time.Since(s.started)
	if wait > 0 {
		time.Sleep(wait)
	}
	start := s.pos
	for s.pos < len(s.reports) && s.reports[s.pos].Timestamp < cut {
		s.pos++
	}
	return s.reports[start:s.pos], true
}
