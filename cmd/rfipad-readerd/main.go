// Command rfipad-readerd is the reader daemon: it plays the role of
// the Impinj reader + its host link in the paper's setup (§IV-A). It
// simulates a full RFIPad deployment — a 3 s static prelude for
// calibration followed by a writer air-writing a word — and streams
// the resulting tag reports to connected backends over the LLRP-style
// TCP protocol in internal/llrp.
//
// The daemon is built for flaky links: it enforces read/write
// deadlines, supports stream resume (a reconnecting backend's
// StartROSpec carries its last-seen timestamp and replay restarts
// there, with a small overlap), and can deliberately sabotage its own
// connections via the -fault-* flags for end-to-end chaos runs.
//
// Operational output is structured logging on stderr via log/slog.
// With -obs-addr set, an admin listener serves Prometheus metrics —
// including injected-fault counts by kind and replay pacing lag —
// plus /healthz, /debug/vars, and /debug/pprof/.
//
// Usage:
//
//	rfipad-readerd -listen 127.0.0.1:5084 -word HELLO -speed 4
//	rfipad-readerd -word HI -fault-drop-after 65536 -fault-dup 0.05
//	rfipad-readerd -word HI -streams 16 -speed 10   # one variant per connection
//	rfipad-readerd -obs-addr 127.0.0.1:9091 -log-format json
//
// Pair it with rfipad-live, which connects, calibrates from the
// prelude, and recognizes the strokes online, reconnecting as needed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"rfipad/internal/faultnet"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
)

func main() {
	os.Exit(run())
}

// usageError prints a flag-validation failure plus usage and returns
// exit code 2: bad flags must die at startup, not deep in replay.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rfipad-readerd: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	var (
		listen  = flag.String("listen", "127.0.0.1:5084", "TCP listen address")
		word    = flag.String("word", "HI", "word the simulated writer performs")
		seed    = flag.Int64("seed", 1, "simulation seed")
		streams = flag.Int("streams", 1, "distinct capture variants: successive connections cycle through seeds seed..seed+N-1 (pair with rfipad-live -streams; variants assume fault-free links, since a reconnect advances the cycle)")
		speed   = flag.Float64("speed", 1, "replay speed factor (higher = faster than real time)")
		batch   = flag.Duration("batch", 50*time.Millisecond, "report batching window")
		once    = flag.Bool("once", false, "exit after the first client finishes")
		overlap = flag.Duration("resume-overlap", replay.DefaultResumeOverlap,
			"how far before a resume point replay restarts (duplicate window)")
		idleTimeout = flag.Duration("idle-timeout", 45*time.Second,
			"drop a connection silent for this long (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second,
			"per-frame write deadline (0 disables)")

		faultSeed    = flag.Int64("fault-seed", 1, "fault injection seed (deterministic schedules)")
		faultLatency = flag.Duration("fault-latency", 0, "added latency per write")
		faultJitter  = flag.Duration("fault-latency-jitter", 0, "uniform jitter on -fault-latency")
		faultPartial = flag.Bool("fault-partial", false, "split writes into random chunks")
		faultDropAt  = flag.Int64("fault-drop-after", 0, "force-close each connection after ~N written bytes (0 = never)")
		faultDropP   = flag.Float64("fault-drop-prob", 0, "per-write connection drop probability")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "per-write byte corruption probability")
		faultDup     = flag.Float64("fault-dup", 0, "per-frame duplication probability")
		faultReorder = flag.Float64("fault-reorder", 0, "per-frame reordering probability")
		faultDropWr  = flag.Bool("fault-drop-writes", false, "one-way partition: swallow every outbound write (reads keep flowing)")
		faultDropRd  = flag.Bool("fault-drop-reads", false, "one-way partition: discard every inbound read (writes keep flowing)")

		obsAddr   = flag.String("obs-addr", "", "admin listen address serving /metrics, /healthz, /debug/pprof (empty disables)")
		logFormat = flag.String("log-format", obs.FormatText, "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	// Validate everything up front so misconfiguration is a usage error,
	// not a panic once a client connects.
	switch {
	case *speed <= 0:
		return usageError("-speed must be positive (got %v)", *speed)
	case *streams <= 0:
		return usageError("-streams must be positive (got %d)", *streams)
	case *batch <= 0:
		return usageError("-batch must be positive (got %v)", *batch)
	case *overlap < 0:
		return usageError("-resume-overlap must be non-negative (got %v)", *overlap)
	case *word == "":
		return usageError("-word must be non-empty")
	case *faultDropP < 0 || *faultDropP > 1 || *faultCorrupt < 0 || *faultCorrupt > 1 ||
		*faultDup < 0 || *faultDup > 1 || *faultReorder < 0 || *faultReorder > 1:
		return usageError("fault probabilities must be in [0,1]")
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.Component(obs.NewLogger(obs.LogOptions{Format: *logFormat, Level: level}), "readerd")

	// SIGINT/SIGTERM trigger a graceful drain: stop accepting, close the
	// server, and exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.Default()
	// The reader daemon has no recognition pipeline to trace, but its
	// /metrics still carries the Go runtime panel (GC pauses, heap,
	// goroutines, scheduling latency) like every other process.
	obs.EnableRuntimeMetrics(reg)
	// One capture per stream variant: the same word written by distinct
	// simulated deployments, so a multi-stream backend exercises
	// independent calibrations and recognizer states.
	captures := make([][]llrp.TagReport, *streams)
	for i := range captures {
		reports, err := replay.Synthesize(*seed+int64(i), strings.ToUpper(*word), 3*time.Second)
		if err != nil {
			log.Error("synthesis failed", "seed", *seed+int64(i), "err", err)
			return 1
		}
		captures[i] = reports
		log.Info("capture synthesized", "variant", i, "reports", len(reports),
			"span", reports[len(reports)-1].Timestamp.Round(time.Millisecond),
			"word", strings.ToUpper(*word))
	}
	reports := captures[0]

	done := make(chan struct{}, *streams)
	var connSeq atomic.Int64
	srv := llrp.NewServer(func() llrp.ReportSource {
		variant := int(connSeq.Add(1)-1) % len(captures)
		return replay.NewSource(captures[variant], replay.Options{
			Batch:         *batch,
			Speed:         *speed,
			ResumeOverlap: *overlap,
			OnComplete: func() {
				select {
				case done <- struct{}{}:
				default:
				}
			},
		})
	})
	srv.IdleTimeout = *idleTimeout
	srv.WriteTimeout = *writeTimeout

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Error("listen failed", "addr", *listen, "err", err)
		return 1
	}
	faultCounter := func(kind string) *obs.Counter {
		return reg.Counter("faultnet_injected_faults_total",
			"Faults injected into connections, by kind.", obs.L("kind", kind))
	}
	faults := faultnet.Config{
		Seed:             *faultSeed,
		Latency:          *faultLatency,
		LatencyJitter:    *faultJitter,
		PartialWrites:    *faultPartial,
		DropAfterBytes:   *faultDropAt,
		DropProb:         *faultDropP,
		CorruptProb:      *faultCorrupt,
		DupFrameProb:     *faultDup,
		ReorderFrameProb: *faultReorder,
		DropWrites:       *faultDropWr,
		DropReads:        *faultDropRd,
		FrameHeaderLen:   llrp.HeaderLen,
		FrameSize:        llrp.FrameSize,
		Observer:         func(kind string) { faultCounter(kind).Inc() },
	}
	wrapped := faultnet.Listen(l, faults)
	armed := wrapped != l
	if armed {
		log.Info("fault injection armed: connections will be sabotaged deterministically")
	}
	log.Info("listening", "addr", l.Addr())

	// Flips to false on signal so /readyz turns away new backends while
	// existing connections drain.
	var accepting atomic.Bool
	accepting.Store(true)

	if *obsAddr != "" {
		admin, err := obs.StartAdmin(*obsAddr, reg, func() obs.Health {
			return obs.Health{OK: true, Detail: map[string]any{
				"listening":    l.Addr().String(),
				"active_conns": srv.ActiveConns(),
				"reports":      len(reports),
				"faults_armed": armed,
			}}
		}, func() obs.Health {
			return obs.Health{OK: accepting.Load(), Detail: map[string]any{
				"accepting": accepting.Load(),
			}}
		})
		if err != nil {
			log.Error("admin listener failed", "addr", *obsAddr, "err", err)
			return 1
		}
		defer func() {
			if cerr := admin.Close(); cerr != nil {
				log.Warn("admin shutdown", "err", cerr)
			}
		}()
		log.Info("admin listening", "addr", admin.Addr())
	}

	if *once {
		go func() {
			for i := 0; i < *streams; i++ {
				<-done
			}
			// The source is exhausted, but a client whose link a fault
			// just cut still needs to reconnect and replay the tail to
			// receive the completion event. Linger until no client has
			// been connected for a grace period.
			idleSince := time.Now()
			for {
				time.Sleep(100 * time.Millisecond)
				if srv.ActiveConns() > 0 {
					idleSince = time.Now()
				} else if time.Since(idleSince) > 2*time.Second {
					break
				}
			}
			srv.Close()
		}()
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		if errors.Is(ctx.Err(), context.Canceled) {
			accepting.Store(false)
			log.Info("signal received; draining")
			srv.Close()
		}
	}()
	err = srv.Serve(wrapped)
	if ctx.Err() != nil {
		<-drained
		log.Info("drained on signal")
		return 0
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		log.Error("serve failed", "err", err)
		return 1
	}
	return 0
}
