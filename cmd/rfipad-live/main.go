// Command rfipad-live is the backend of the paper's setup: it connects
// to a reader daemon (rfipad-readerd), calibrates the diversity
// suppression from the static prelude, and recognizes strokes and
// letters online as reports stream in.
//
// The connection is a fault-tolerant llrp.Session: if the daemon
// restarts or the link drops mid-word, the backend reconnects with
// capped exponential backoff and resumes the stream from its last-seen
// timestamp, keeping whatever it already recognized. Calibration
// tolerates dead tags; their cells are interpolated from live
// neighbors.
//
// Usage:
//
//	rfipad-live -connect 127.0.0.1:5084 -calib 3s
//	rfipad-live -connect 127.0.0.1:5084 -retry-max 10 -keepalive 500ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rfipad"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("connect", "127.0.0.1:5084", "reader daemon address")
		calib = flag.Duration("calib", 3*time.Second, "length of the static prelude used for calibration")
		rows  = flag.Int("rows", 5, "tag array rows")
		cols  = flag.Int("cols", 5, "tag array columns")

		retryInitial = flag.Duration("retry-initial", 100*time.Millisecond, "first reconnect backoff delay")
		retryMaxWait = flag.Duration("retry-max-wait", 5*time.Second, "backoff cap")
		retryMax     = flag.Int("retry-max", 0, "consecutive failed connects before giving up (0 = retry forever)")
		retrySeed    = flag.Int64("retry-seed", time.Now().UnixNano(), "backoff jitter seed")
		keepalive    = flag.Duration("keepalive", 2*time.Second, "keepalive ping interval (negative disables)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "declare the link dead after this much silence (default 4×keepalive)")
		writeTimeout = flag.Duration("write-timeout", 5*time.Second, "per-frame write deadline")
	)
	flag.Parse()

	sess, err := llrp.DialSession(context.Background(), llrp.SessionConfig{
		Addr:              *addr,
		BackoffInitial:    *retryInitial,
		BackoffMax:        *retryMaxWait,
		JitterSeed:        *retrySeed,
		MaxAttempts:       *retryMax,
		KeepaliveInterval: *keepalive,
		IdleTimeout:       *idleTimeout,
		WriteTimeout:      *writeTimeout,
		OnEvent:           printSessionEvent,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer sess.Close()
	fmt.Printf("connected to %s, calibrating from the first %v...\n", *addr, *calib)

	res, err := live.Run(sess, live.Config{
		Grid:          rfipad.Grid{Rows: *rows, Cols: *cols},
		CalibDuration: *calib,
		OnStatus:      func(line string) { fmt.Println(line) },
		OnEvent: func(ev rfipad.Event) {
			switch ev.Kind {
			case rfipad.StrokeDetected:
				fmt.Printf("stroke %-8v span %v–%v\n", ev.Stroke.Motion,
					ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
			case rfipad.LetterDeduced:
				fmt.Printf("letter %q\n", ev.Letter)
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (recognized %q before failing)\n", err, res.Letters)
		return 1
	}
	fmt.Printf("stream ended; recognized %q (%d stroke(s), %d reconnect(s), %d dead tag(s))\n",
		res.Letters, res.Strokes, res.Reconnects, res.DeadTags)
	return 0
}

// printSessionEvent narrates connection lifecycle to stderr so the
// recognition output on stdout stays clean.
func printSessionEvent(ev llrp.SessionEvent) {
	switch ev.Kind {
	case llrp.SessionConnected:
		if ev.ResumeFrom == llrp.NoResume {
			fmt.Fprintln(os.Stderr, "session: connected (fresh stream)")
		} else {
			fmt.Fprintf(os.Stderr, "session: reconnected, resuming from %v\n", ev.ResumeFrom.Round(time.Millisecond))
		}
	case llrp.SessionDisconnected:
		fmt.Fprintf(os.Stderr, "session: link lost: %v\n", ev.Err)
	case llrp.SessionRetrying:
		fmt.Fprintf(os.Stderr, "session: retry %d in %v (%v)\n", ev.Attempt, ev.Wait.Round(time.Millisecond), ev.Err)
	case llrp.SessionReaderInfo:
		fmt.Fprintf(os.Stderr, "session: reader: %s\n", ev.Info)
	}
}
