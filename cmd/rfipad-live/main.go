// Command rfipad-live is the backend of the paper's setup: it connects
// to a reader daemon (rfipad-readerd), calibrates the diversity
// suppression from the static prelude, and recognizes strokes and
// letters online as reports stream in.
//
// The connection is a fault-tolerant llrp.Session: if the daemon
// restarts or the link drops mid-word, the backend reconnects with
// capped exponential backoff and resumes the stream from its last-seen
// timestamp, keeping whatever it already recognized. A circuit breaker
// (-breaker-threshold) stops a flapping reader from burning reconnect
// bandwidth. Calibration tolerates dead tags; their cells are
// interpolated from live neighbors.
//
// With -checkpoint-dir set, calibration state is checkpointed to disk
// (atomically, with a checksum) on a timer and on every drain; a
// restarted backend restores a fresh-enough checkpoint and skips the
// static prelude entirely. SIGINT/SIGTERM trigger a graceful drain:
// in-flight batches are flushed, final telemetry is emitted, and
// checkpoints are written before exit.
//
// Recognition output (strokes, letters, the final word) goes to
// stdout; everything operational is structured logging on stderr via
// log/slog, tagged with a component attribute (session, live). With
// -obs-addr set, an admin listener serves Prometheus metrics
// (/metrics), health (/healthz), readiness for load balancers
// (/readyz — ready only once calibration is restored-or-complete),
// expvar (/debug/vars), and pprof (/debug/pprof/).
//
// Usage:
//
//	rfipad-live -connect 127.0.0.1:5084 -calib 3s
//	rfipad-live -connect 127.0.0.1:5084 -retry-max 10 -keepalive 500ms
//	rfipad-live -connect 127.0.0.1:5084 -streams 16 -engine-workers 4
//	rfipad-live -checkpoint-dir /var/lib/rfipad -breaker-threshold 8
//	rfipad-live -obs-addr 127.0.0.1:9090 -log-format json -log-level debug
//
// With -streams > 1 the backend opens that many sessions and fans them
// into the sharded recognition engine (internal/engine); pair it with
// rfipad-readerd -streams, whose successive connections serve distinct
// capture variants.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rfipad"
	"rfipad/internal/cluster"
	"rfipad/internal/engine"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

func main() {
	os.Exit(run())
}

// usageError prints a flag-validation failure plus usage and returns
// the conventional exit code 2: bad flags must die at startup, not as
// a panic deep in the pipeline.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rfipad-live: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	var (
		addr  = flag.String("connect", "127.0.0.1:5084", "reader daemon address")
		calib = flag.Duration("calib", 3*time.Second, "length of the static prelude used for calibration")
		rows  = flag.Int("rows", 5, "tag array rows")
		cols  = flag.Int("cols", 5, "tag array columns")

		streams       = flag.Int("streams", 1, "concurrent reader sessions fed into one sharded engine (pair with rfipad-readerd -streams)")
		engineWorkers = flag.Int("engine-workers", 0, "engine shard workers when -streams > 1 (0 = GOMAXPROCS)")
		clusterNodes  = flag.Int("cluster-nodes", 0, "run an in-process multi-node cluster with this many members; streams place via consistent hashing and migrate by checkpoint handoff (0 = single engine)")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "bound on mailbox drain during graceful shutdown")

		leaseDuration   = flag.Duration("lease-duration", 0, "cluster mode: ownership lease each stream owner holds, renewed per heartbeat; an owner whose lease expires self-demotes before the failure detector reassigns; must exceed the heartbeat interval and stay under the failure deadline or it is reset (0 = 3/4 of the failure deadline)")
		leaseCheckEvery = flag.Duration("lease-check-every", 0, "cluster mode: owner-side watchdog period for reaping expired leases (0 = lease-duration/4)")

		retryInitial = flag.Duration("retry-initial", 100*time.Millisecond, "first reconnect backoff delay")
		retryMaxWait = flag.Duration("retry-max-wait", 5*time.Second, "backoff cap")
		retryMax     = flag.Int("retry-max", 0, "consecutive failed connects before giving up (0 = retry forever)")
		retrySeed    = flag.Int64("retry-seed", time.Now().UnixNano(), "backoff jitter seed")
		keepalive    = flag.Duration("keepalive", 2*time.Second, "keepalive ping interval (negative disables)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "declare the link dead after this much silence (default 4×keepalive)")
		writeTimeout = flag.Duration("write-timeout", 5*time.Second, "per-frame write deadline")

		breakerThreshold = flag.Int("breaker-threshold", 8, "consecutive failed connects that open the reconnect circuit breaker (0 disables)")
		breakerWindow    = flag.Duration("breaker-window", 30*time.Second, "failure streak window for the circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cool-down before a half-open probe (jittered)")

		checkpointDir    = flag.String("checkpoint-dir", "", "directory for calibration checkpoints (empty disables durability)")
		checkpointEvery  = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint save interval")
		checkpointMaxAge = flag.Duration("checkpoint-max-age", 15*time.Minute, "ignore checkpoints older than this and calibrate live")

		obsAddr   = flag.String("obs-addr", "", "admin listen address serving /metrics, /healthz, /readyz, /debug/traces, /debug/flight, /debug/pprof (empty disables)")
		logFormat = flag.String("log-format", obs.FormatText, "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")

		traceSample = flag.Int("trace-sample", 1, "trace one in N streams (1 = every stream, negative disables tracing)")
		traceBuf    = flag.Int("trace-buf", 256, "per-stream trace ring capacity in spans")
		flightDir   = flag.String("flight-dir", "", "directory for anomaly flight-recorder dumps (flight.jsonl; empty disables)")
	)
	flag.Parse()

	// Validate everything up front; a daemon that dies at flag parse is
	// recoverable, one that panics mid-calibration is an outage.
	switch {
	case *rows <= 0 || *cols <= 0:
		return usageError("-rows and -cols must be positive (got %d×%d)", *rows, *cols)
	case *calib <= 0:
		return usageError("-calib must be positive (got %v)", *calib)
	case *streams <= 0:
		return usageError("-streams must be positive (got %d)", *streams)
	case *engineWorkers < 0:
		return usageError("-engine-workers must be non-negative (got %d)", *engineWorkers)
	case *clusterNodes < 0:
		return usageError("-cluster-nodes must be non-negative (got %d)", *clusterNodes)
	case *leaseDuration < 0 || *leaseCheckEvery < 0:
		return usageError("-lease-duration and -lease-check-every must be non-negative")
	case *drainTimeout <= 0:
		return usageError("-drain-timeout must be positive (got %v)", *drainTimeout)
	case *retryMax < 0:
		return usageError("-retry-max must be non-negative (got %d)", *retryMax)
	case *retryInitial <= 0 || *retryMaxWait <= 0:
		return usageError("-retry-initial and -retry-max-wait must be positive")
	case *breakerThreshold < 0:
		return usageError("-breaker-threshold must be non-negative (got %d)", *breakerThreshold)
	case *breakerCooldown <= 0 || *breakerWindow <= 0:
		return usageError("-breaker-cooldown and -breaker-window must be positive")
	case *checkpointEvery <= 0 || *checkpointMaxAge <= 0:
		return usageError("-checkpoint-every and -checkpoint-max-age must be positive")
	case *traceBuf <= 0:
		return usageError("-trace-buf must be positive (got %d)", *traceBuf)
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.NewLogger(obs.LogOptions{Format: *logFormat, Level: level})

	var store *supervise.Store
	if *checkpointDir != "" {
		store, err = supervise.NewStore(*checkpointDir)
		if err != nil {
			return usageError("-checkpoint-dir: %v", err)
		}
	}

	// SIGINT/SIGTERM cancel this context: sessions unblock with
	// ctx.Err(), the engine drains, checkpoints are written, and the
	// process exits cleanly instead of losing calibration state.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.Default()
	tracer := trace.New(trace.Config{SampleEvery: *traceSample, BufSpans: *traceBuf, Obs: reg})
	var flight *trace.Flight
	if *flightDir != "" {
		flight, err = trace.OpenFlight(*flightDir, reg, 0)
		if err != nil {
			return usageError("-flight-dir: %v", err)
		}
		defer flight.Close()
		log.Info("flight recorder armed", "component", "obs", "file", flight.Path())
	}
	if *obsAddr != "" {
		admin, err := obs.StartAdmin(*obsAddr, reg, liveHealth(reg), liveReady(reg),
			obs.Endpoint{Pattern: "/debug/traces", Handler: tracer.Handler()},
			obs.Endpoint{Pattern: "/debug/flight", Handler: flight.Handler()})
		if err != nil {
			log.Error("admin listener failed", "addr", *obsAddr, "err", err)
			return 1
		}
		defer func() {
			if cerr := admin.Close(); cerr != nil {
				log.Warn("admin shutdown", "component", "obs", "err", cerr)
			}
		}()
		log.Info("admin listening", "component", "obs", "addr", admin.Addr())
	}

	sessLog := obs.Component(log, "session")
	dial := func() (*llrp.Session, error) {
		return llrp.DialSession(ctx, llrp.SessionConfig{
			Addr:              *addr,
			BackoffInitial:    *retryInitial,
			BackoffMax:        *retryMaxWait,
			JitterSeed:        *retrySeed,
			MaxAttempts:       *retryMax,
			KeepaliveInterval: *keepalive,
			IdleTimeout:       *idleTimeout,
			WriteTimeout:      *writeTimeout,
			BreakerThreshold:  *breakerThreshold,
			BreakerWindow:     *breakerWindow,
			BreakerCooldown:   *breakerCooldown,
			Flight:            flight,
			OnEvent:           func(ev llrp.SessionEvent) { logSessionEvent(sessLog, ev) },
		})
	}

	if *clusterNodes > 0 {
		return runClusterMode(log, dial, *addr, *streams, *clusterNodes, cluster.Config{
			Stream: live.Config{
				Grid:          rfipad.Grid{Rows: *rows, Cols: *cols},
				CalibDuration: *calib,
			},
			EngineWorkers:    *engineWorkers,
			LeaseDuration:    *leaseDuration,
			LeaseCheckEvery:  *leaseCheckEvery,
			Checkpoints:      store,
			CheckpointEvery:  *checkpointEvery,
			CheckpointMaxAge: *checkpointMaxAge,
			Logger:           obs.Component(log, "cluster"),
			Trace:            tracer,
			Flight:           flight,
		})
	}

	if *streams > 1 {
		return runEngineMode(log, dial, *addr, *streams, *engineWorkers, engine.Config{
			Stream: live.Config{
				Grid:          rfipad.Grid{Rows: *rows, Cols: *cols},
				CalibDuration: *calib,
			},
			Checkpoints:      store,
			CheckpointEvery:  *checkpointEvery,
			CheckpointMaxAge: *checkpointMaxAge,
			DrainTimeout:     *drainTimeout,
			Trace:            tracer,
			Flight:           flight,
		})
	}

	sess, err := dial()
	if err != nil {
		log.Error("dial failed", "component", "session", "addr", *addr, "err", err)
		return 1
	}
	defer sess.Close()
	fmt.Printf("connected to %s, calibrating from the first %v...\n", *addr, *calib)

	res, err := live.Run(sess, live.Config{
		Grid:             rfipad.Grid{Rows: *rows, Cols: *cols},
		CalibDuration:    *calib,
		Logger:           obs.Component(log, "live"),
		Checkpoints:      store,
		CheckpointEvery:  *checkpointEvery,
		CheckpointMaxAge: *checkpointMaxAge,
		Trace:            tracer,
		Flight:           flight,
		OnEvent: func(ev rfipad.Event) {
			switch ev.Kind {
			case rfipad.StrokeDetected:
				fmt.Printf("stroke %-8v span %v–%v\n", ev.Stroke.Motion,
					ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
			case rfipad.LetterDeduced:
				fmt.Printf("letter %q\n", ev.Letter)
			}
		},
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Graceful drain: the signal context cancelled the session.
			// The checkpoint (if enabled) was written on the way out.
			log.Info("drained on signal", "component", "live",
				"letters", res.Letters, "strokes", res.Strokes)
			fmt.Printf("drained; recognized %q so far\n", res.Letters)
			return 0
		}
		log.Error("run failed", "component", "live", "err", err, "partial_letters", res.Letters)
		return 1
	}
	fmt.Printf("stream ended; recognized %q (%d stroke(s), %d reconnect(s), %d dead tag(s))\n",
		res.Letters, res.Strokes, res.Reconnects, res.DeadTags)
	return 0
}

// runEngineMode fans n reader sessions into one sharded engine: each
// successive connection to a rfipad-readerd -streams daemon receives a
// distinct capture variant, so this drives n independent calibrations
// and recognizers concurrently. Events stream to stdout tagged with
// their stream ID; per-stream summaries print after every source ends.
func runEngineMode(log *slog.Logger, dial func() (*llrp.Session, error), addr string, n, workers int, cfg engine.Config) int {
	cfg.Workers = workers
	cfg.Logger = obs.Component(log, "engine")
	cfg.OnEvent = func(id engine.StreamID, ev rfipad.Event) {
		switch ev.Kind {
		case rfipad.StrokeDetected:
			fmt.Printf("[%s] stroke %-8v span %v–%v\n", id, ev.Stroke.Motion,
				ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
		case rfipad.LetterDeduced:
			fmt.Printf("[%s] letter %q\n", id, ev.Letter)
		}
	}
	eng := engine.New(cfg)
	fmt.Printf("connecting %d streams to %s...\n", n, addr)
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	for i := 0; i < n; i++ {
		sess, err := dial()
		if err != nil {
			log.Error("dial failed", "component", "session", "addr", addr, "stream", i, "err", err)
			eng.Close()
			return 1
		}
		defer sess.Close()
		id := engine.StreamID(fmt.Sprintf("stream-%02d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := eng.RunStream(id, sess)
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Error("stream failed", "component", "engine", "stream", string(id), "err", err)
				failed.Store(true)
			}
		}()
	}
	wg.Wait()
	for _, res := range eng.Close() {
		if res.Err != nil {
			log.Error("stream ended with error", "component", "engine", "stream", string(res.ID), "err", res.Err)
			failed.Store(true)
			continue
		}
		fmt.Printf("[%s] recognized %q (%d stroke(s), %d dead tag(s))\n",
			res.ID, res.Letters, res.Strokes, res.DeadTags)
	}
	if failed.Load() {
		return 1
	}
	return 0
}

// runClusterMode spreads n reader sessions across an in-process
// multi-node cluster: the coordinator places each stream on a member
// by consistent hashing, membership runs on heartbeats, and any
// ownership change mid-word moves the stream's calibration by
// checkpoint handoff. Events stream to stdout tagged with node and
// stream; per-node summaries print after every source ends.
func runClusterMode(log *slog.Logger, dial func() (*llrp.Session, error), addr string, n, nodes int, cfg cluster.Config) int {
	cfg.OnEvent = func(node cluster.NodeID, id engine.StreamID, ev rfipad.Event) {
		switch ev.Kind {
		case rfipad.StrokeDetected:
			fmt.Printf("[%s/%s] stroke %-8v span %v–%v\n", node, id, ev.Stroke.Motion,
				ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
		case rfipad.LetterDeduced:
			fmt.Printf("[%s/%s] letter %q\n", node, id, ev.Letter)
		}
	}
	c := cluster.New(cfg)
	for i := 0; i < nodes; i++ {
		id := cluster.NodeID(fmt.Sprintf("node-%02d", i))
		if _, err := c.AddNode(id); err != nil {
			log.Error("node join failed", "component", "cluster", "node", string(id), "err", err)
			c.Close()
			return 1
		}
	}
	fmt.Printf("cluster up: %d node(s); connecting %d stream(s) to %s...\n", nodes, n, addr)
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	for i := 0; i < n; i++ {
		sess, err := dial()
		if err != nil {
			log.Error("dial failed", "component", "session", "addr", addr, "stream", i, "err", err)
			c.Close()
			return 1
		}
		defer sess.Close()
		id := engine.StreamID(fmt.Sprintf("stream-%02d", i))
		if owner, ok := c.Owner(id); ok {
			fmt.Printf("[%s] placed on %s\n", id, owner)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := c.RunStream(id, sess)
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Error("stream failed", "component", "cluster", "stream", string(id), "err", err)
				failed.Store(true)
			}
		}()
	}
	wg.Wait()
	for node, results := range c.Close() {
		for _, res := range results {
			if res.Err != nil {
				log.Error("stream ended with error", "component", "cluster",
					"node", string(node), "stream", string(res.ID), "err", res.Err)
				failed.Store(true)
				continue
			}
			fmt.Printf("[%s/%s] recognized %q (%d stroke(s), %d dead tag(s))\n",
				node, res.ID, res.Letters, res.Strokes, res.DeadTags)
		}
	}
	if failed.Load() {
		return 1
	}
	return 0
}

// liveHealth evaluates /healthz from the metrics registry: healthy
// while the reader link is up, with calibration state and reconnect
// counts as detail fields.
func liveHealth(reg *obs.Registry) obs.HealthFunc {
	return func() obs.Health {
		snap := reg.Snapshot()
		connected := snap.Value("llrp_session_connected") == 1
		return obs.Health{
			OK: connected,
			Detail: map[string]any{
				"connected":  connected,
				"calibrated": snap.Value("rfipad_calibrated") == 1,
				"dead_tags":  snap.Value("rfipad_dead_tags"),
				"reconnects": snap.Value("llrp_session_reconnects_total"),
			},
		}
	}
}

// liveReady evaluates /readyz: the load-balancer gate. Ready only once
// calibration is restored-or-complete — single-stream mode sets
// rfipad_ready; engine mode is ready while the engine accepts pushes
// and at least one stream has calibrated (so traffic routed here can
// actually be recognized).
func liveReady(reg *obs.Registry) obs.HealthFunc {
	return func() obs.Health {
		snap := reg.Snapshot()
		single := snap.Value("rfipad_ready") == 1
		engineReady := snap.Value("engine_accepting") == 1 &&
			snap.Value("engine_streams_calibrated") > 0
		return obs.Health{
			OK: single || engineReady,
			Detail: map[string]any{
				"calibrated":         snap.Value("rfipad_calibrated") == 1,
				"restored":           snap.Value("rfipad_calibration_restored_total"),
				"engine_accepting":   snap.Value("engine_accepting") == 1,
				"streams_calibrated": snap.Value("engine_streams_calibrated"),
			},
		}
	}
}

// logSessionEvent narrates connection lifecycle through the shared
// structured log path (the same stream live status uses), keeping the
// recognition output on stdout clean.
func logSessionEvent(log *slog.Logger, ev llrp.SessionEvent) {
	switch ev.Kind {
	case llrp.SessionConnected:
		if ev.ResumeFrom == llrp.NoResume {
			log.Info("connected", "resume", false)
		} else {
			log.Info("reconnected", "resume", true, "resume_from", ev.ResumeFrom.Round(time.Millisecond))
		}
	case llrp.SessionDisconnected:
		log.Warn("link lost", "err", ev.Err)
	case llrp.SessionRetrying:
		log.Info("retrying", "attempt", ev.Attempt, "wait", ev.Wait.Round(time.Millisecond), "err", ev.Err)
	case llrp.SessionReaderInfo:
		log.Info("reader event", "info", ev.Info)
	}
}
