// Command rfipad-live is the backend of the paper's setup: it connects
// to a reader daemon (rfipad-readerd), calibrates the diversity
// suppression from the static prelude, and recognizes strokes and
// letters online as reports stream in.
//
// Usage:
//
//	rfipad-live -connect 127.0.0.1:5084 -calib 3s
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"rfipad"
	"rfipad/internal/llrp"
	"rfipad/internal/tagmodel"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("connect", "127.0.0.1:5084", "reader daemon address")
		calib = flag.Duration("calib", 3*time.Second, "length of the static prelude used for calibration")
		rows  = flag.Int("rows", 5, "tag array rows")
		cols  = flag.Int("cols", 5, "tag array columns")
	)
	flag.Parse()

	client, err := llrp.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer client.Close()
	if err := client.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("connected to %s, calibrating from the first %v...\n", *addr, *calib)

	grid := rfipad.Grid{Rows: *rows, Cols: *cols}

	// Phase 1: accumulate the static prelude and calibrate.
	var static []rfipad.Reading
	var cal *rfipad.Calibration
	var rec *rfipad.Recognizer
	var lastTime time.Duration
	letters := ""

	handle := func(evs []rfipad.Event) {
		for _, ev := range evs {
			switch ev.Kind {
			case rfipad.StrokeDetected:
				fmt.Printf("stroke %-8v span %v–%v\n", ev.Stroke.Motion,
					ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
			case rfipad.LetterDeduced:
				fmt.Printf("letter %q\n", ev.Letter)
				letters += string(ev.Letter)
			}
		}
	}

	for {
		batch, err := client.NextReports()
		if errors.Is(err, llrp.ErrStreamEnded) {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, rep := range batch {
			reading := rfipad.Reading{
				TagIndex: tagmodel.SerialOf(rep.EPC) - 1,
				EPC:      rep.EPC,
				Time:     rep.Timestamp,
				Phase:    rep.PhaseRad,
				RSS:      rep.RSSdBm,
				Doppler:  rep.DopplerHz,
			}
			lastTime = reading.Time
			if cal == nil {
				static = append(static, reading)
				if reading.Time >= *calib {
					c, err := rfipad.Calibrate(static, grid.NumTags())
					if err != nil {
						fmt.Fprintf(os.Stderr, "calibration failed: %v\n", err)
						return 1
					}
					cal = c
					rec = rfipad.NewRecognizer(rfipad.NewPipeline(grid, cal), nil)
					fmt.Println("calibrated; recognizing online")
				}
				continue
			}
			handle(rec.Ingest(reading))
		}
	}
	if rec != nil {
		handle(rec.Flush(lastTime + 2*time.Second))
	}
	fmt.Printf("stream ended; recognized %q\n", letters)
	return 0
}
