// Command rfipad-live is the backend of the paper's setup: it connects
// to a reader daemon (rfipad-readerd), calibrates the diversity
// suppression from the static prelude, and recognizes strokes and
// letters online as reports stream in.
//
// The connection is a fault-tolerant llrp.Session: if the daemon
// restarts or the link drops mid-word, the backend reconnects with
// capped exponential backoff and resumes the stream from its last-seen
// timestamp, keeping whatever it already recognized. Calibration
// tolerates dead tags; their cells are interpolated from live
// neighbors.
//
// Recognition output (strokes, letters, the final word) goes to
// stdout; everything operational is structured logging on stderr via
// log/slog, tagged with a component attribute (session, live). With
// -obs-addr set, an admin listener serves Prometheus metrics
// (/metrics), health with calibration state (/healthz), expvar
// (/debug/vars), and pprof (/debug/pprof/).
//
// Usage:
//
//	rfipad-live -connect 127.0.0.1:5084 -calib 3s
//	rfipad-live -connect 127.0.0.1:5084 -retry-max 10 -keepalive 500ms
//	rfipad-live -connect 127.0.0.1:5084 -streams 16 -engine-workers 4
//	rfipad-live -obs-addr 127.0.0.1:9090 -log-format json -log-level debug
//
// With -streams > 1 the backend opens that many sessions and fans them
// into the sharded recognition engine (internal/engine); pair it with
// rfipad-readerd -streams, whose successive connections serve distinct
// capture variants.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rfipad"
	"rfipad/internal/engine"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("connect", "127.0.0.1:5084", "reader daemon address")
		calib = flag.Duration("calib", 3*time.Second, "length of the static prelude used for calibration")
		rows  = flag.Int("rows", 5, "tag array rows")
		cols  = flag.Int("cols", 5, "tag array columns")

		streams       = flag.Int("streams", 1, "concurrent reader sessions fed into one sharded engine (pair with rfipad-readerd -streams)")
		engineWorkers = flag.Int("engine-workers", 0, "engine shard workers when -streams > 1 (0 = GOMAXPROCS)")

		retryInitial = flag.Duration("retry-initial", 100*time.Millisecond, "first reconnect backoff delay")
		retryMaxWait = flag.Duration("retry-max-wait", 5*time.Second, "backoff cap")
		retryMax     = flag.Int("retry-max", 0, "consecutive failed connects before giving up (0 = retry forever)")
		retrySeed    = flag.Int64("retry-seed", time.Now().UnixNano(), "backoff jitter seed")
		keepalive    = flag.Duration("keepalive", 2*time.Second, "keepalive ping interval (negative disables)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "declare the link dead after this much silence (default 4×keepalive)")
		writeTimeout = flag.Duration("write-timeout", 5*time.Second, "per-frame write deadline")

		obsAddr   = flag.String("obs-addr", "", "admin listen address serving /metrics, /healthz, /debug/pprof (empty disables)")
		logFormat = flag.String("log-format", obs.FormatText, "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.NewLogger(obs.LogOptions{Format: *logFormat, Level: level})

	reg := obs.Default()
	if *obsAddr != "" {
		admin, err := obs.StartAdmin(*obsAddr, reg, liveHealth(reg))
		if err != nil {
			log.Error("admin listener failed", "addr", *obsAddr, "err", err)
			return 1
		}
		defer admin.Close()
		log.Info("admin listening", "component", "obs", "addr", admin.Addr())
	}

	sessLog := obs.Component(log, "session")
	dial := func() (*llrp.Session, error) {
		return llrp.DialSession(context.Background(), llrp.SessionConfig{
			Addr:              *addr,
			BackoffInitial:    *retryInitial,
			BackoffMax:        *retryMaxWait,
			JitterSeed:        *retrySeed,
			MaxAttempts:       *retryMax,
			KeepaliveInterval: *keepalive,
			IdleTimeout:       *idleTimeout,
			WriteTimeout:      *writeTimeout,
			OnEvent:           func(ev llrp.SessionEvent) { logSessionEvent(sessLog, ev) },
		})
	}

	if *streams > 1 {
		return runEngineMode(log, dial, *addr, *streams, *engineWorkers, live.Config{
			Grid:          rfipad.Grid{Rows: *rows, Cols: *cols},
			CalibDuration: *calib,
		})
	}

	sess, err := dial()
	if err != nil {
		log.Error("dial failed", "component", "session", "addr", *addr, "err", err)
		return 1
	}
	defer sess.Close()
	fmt.Printf("connected to %s, calibrating from the first %v...\n", *addr, *calib)

	res, err := live.Run(sess, live.Config{
		Grid:          rfipad.Grid{Rows: *rows, Cols: *cols},
		CalibDuration: *calib,
		Logger:        obs.Component(log, "live"),
		OnEvent: func(ev rfipad.Event) {
			switch ev.Kind {
			case rfipad.StrokeDetected:
				fmt.Printf("stroke %-8v span %v–%v\n", ev.Stroke.Motion,
					ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
			case rfipad.LetterDeduced:
				fmt.Printf("letter %q\n", ev.Letter)
			}
		},
	})
	if err != nil {
		log.Error("run failed", "component", "live", "err", err, "partial_letters", res.Letters)
		return 1
	}
	fmt.Printf("stream ended; recognized %q (%d stroke(s), %d reconnect(s), %d dead tag(s))\n",
		res.Letters, res.Strokes, res.Reconnects, res.DeadTags)
	return 0
}

// runEngineMode fans n reader sessions into one sharded engine: each
// successive connection to a rfipad-readerd -streams daemon receives a
// distinct capture variant, so this drives n independent calibrations
// and recognizers concurrently. Events stream to stdout tagged with
// their stream ID; per-stream summaries print after every source ends.
func runEngineMode(log *slog.Logger, dial func() (*llrp.Session, error), addr string, n, workers int, streamCfg live.Config) int {
	eng := engine.New(engine.Config{
		Workers: workers,
		Stream:  streamCfg,
		Logger:  obs.Component(log, "engine"),
		OnEvent: func(id engine.StreamID, ev rfipad.Event) {
			switch ev.Kind {
			case rfipad.StrokeDetected:
				fmt.Printf("[%s] stroke %-8v span %v–%v\n", id, ev.Stroke.Motion,
					ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
			case rfipad.LetterDeduced:
				fmt.Printf("[%s] letter %q\n", id, ev.Letter)
			}
		},
	})
	fmt.Printf("connecting %d streams to %s...\n", n, addr)
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	for i := 0; i < n; i++ {
		sess, err := dial()
		if err != nil {
			log.Error("dial failed", "component", "session", "addr", addr, "stream", i, "err", err)
			return 1
		}
		defer sess.Close()
		id := engine.StreamID(fmt.Sprintf("stream-%02d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eng.RunStream(id, sess); err != nil {
				log.Error("stream failed", "component", "engine", "stream", string(id), "err", err)
				failed.Store(true)
			}
		}()
	}
	wg.Wait()
	for _, res := range eng.Close() {
		if res.Err != nil {
			log.Error("stream ended with error", "component", "engine", "stream", string(res.ID), "err", res.Err)
			failed.Store(true)
			continue
		}
		fmt.Printf("[%s] recognized %q (%d stroke(s), %d dead tag(s))\n",
			res.ID, res.Letters, res.Strokes, res.DeadTags)
	}
	if failed.Load() {
		return 1
	}
	return 0
}

// liveHealth evaluates /healthz from the metrics registry: healthy
// while the reader link is up, with calibration state and reconnect
// counts as detail fields.
func liveHealth(reg *obs.Registry) obs.HealthFunc {
	return func() obs.Health {
		snap := reg.Snapshot()
		connected := snap.Value("llrp_session_connected") == 1
		return obs.Health{
			OK: connected,
			Detail: map[string]any{
				"connected":  connected,
				"calibrated": snap.Value("rfipad_calibrated") == 1,
				"dead_tags":  snap.Value("rfipad_dead_tags"),
				"reconnects": snap.Value("llrp_session_reconnects_total"),
			},
		}
	}
}

// logSessionEvent narrates connection lifecycle through the shared
// structured log path (the same stream live status uses), keeping the
// recognition output on stdout clean.
func logSessionEvent(log *slog.Logger, ev llrp.SessionEvent) {
	switch ev.Kind {
	case llrp.SessionConnected:
		if ev.ResumeFrom == llrp.NoResume {
			log.Info("connected", "resume", false)
		} else {
			log.Info("reconnected", "resume", true, "resume_from", ev.ResumeFrom.Round(time.Millisecond))
		}
	case llrp.SessionDisconnected:
		log.Warn("link lost", "err", ev.Err)
	case llrp.SessionRetrying:
		log.Info("retrying", "attempt", ev.Attempt, "wait", ev.Wait.Round(time.Millisecond), "err", ev.Err)
	case llrp.SessionReaderInfo:
		log.Info("reader event", "info", ev.Info)
	}
}
