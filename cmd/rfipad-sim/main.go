// Command rfipad-sim runs an end-to-end demonstration: a simulated
// writer air-writes a word above the tag plate, the simulated reader
// streams tag reports, and the streaming recognizer prints every
// detected stroke and deduced letter.
//
// Usage:
//
//	rfipad-sim -word HELLO
//	rfipad-sim -word RFID -placement los -location 4 -seed 3 -verbose
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfipad"
)

func main() {
	os.Exit(run())
}

// usageError prints a flag-validation failure plus usage and returns
// exit code 2.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rfipad-sim: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	var (
		word      = flag.String("word", "HI", "uppercase word to write, one letter at a time")
		seed      = flag.Int64("seed", 1, "simulation seed")
		placement = flag.String("placement", "nlos", "antenna placement: nlos or los")
		location  = flag.Int("location", 1, "lab environment 1-4")
		power     = flag.Float64("power", 30, "reader TX power (dBm)")
		verbose   = flag.Bool("verbose", false, "print per-stroke gray maps")
	)
	flag.Parse()

	switch {
	case *word == "":
		return usageError("-word must be non-empty")
	case *location < 1 || *location > 4:
		return usageError("-location must be 1-4 (got %d)", *location)
	case *power <= 0:
		return usageError("-power must be positive (got %v)", *power)
	}

	// Ctrl-C aborts between letters instead of leaving a half-printed
	// transcript mid-stroke.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{
		Seed:       *seed,
		Placement:  rfipad.Placement(*placement),
		Location:   *location,
		TxPowerDBm: *power,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Println("calibrating (static capture, 3 s)...")
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	var got strings.Builder
	for i, ch := range strings.ToUpper(*word) {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "interrupted; recognized %q so far\n", got.String())
			return 0
		}
		rec := sim.NewRecognizer(cal)
		readings, dur, err := sim.WriteLetter(ch, *seed*1000+int64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "letter %q: %v\n", ch, err)
			return 1
		}
		fmt.Printf("\nwriting %q (%d reads over %v)\n", ch, len(readings), dur.Round(time.Millisecond))
		handle := func(evs []rfipad.Event) {
			for _, ev := range evs {
				switch ev.Kind {
				case rfipad.StrokeDetected:
					fmt.Printf("  stroke %-8v span %v–%v\n", ev.Stroke.Motion,
						ev.Span.Start.Round(10*time.Millisecond), ev.Span.End.Round(10*time.Millisecond))
					if *verbose {
						fmt.Println(indent(ev.Stroke.Image.String(), "    "))
					}
				case rfipad.LetterDeduced:
					marker := "✗"
					if ev.LetterOK && ev.Letter == ch {
						marker = "✓"
					}
					fmt.Printf("  letter %q %s (%d strokes)\n", ev.Letter, marker, len(ev.Strokes))
					got.WriteRune(ev.Letter)
				}
			}
		}
		for _, r := range readings {
			handle(rec.Ingest(r))
		}
		handle(rec.Flush(dur + 2*time.Second))
	}
	fmt.Printf("\nwrote %q, recognized %q\n", strings.ToUpper(*word), got.String())
	if got.String() != strings.ToUpper(*word) {
		return 1
	}
	return 0
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
