package main

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"rfipad/internal/experiments/scenario"
)

// newProvenance stamps a report with the commit, seed, and toolchain
// that produced it, so every committed BENCH_* baseline is
// self-describing. The struct is shared with the scenario schema.
func newProvenance(seed int64) scenario.Provenance {
	return scenario.Provenance{
		Commit:    buildCommit(),
		Seed:      seed,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
}

// buildCommit resolves the VCS revision: the build-info stamp when the
// binary was built from a checkout, else `git rev-parse` (covers `go
// run` and `go test`, which skip VCS stamping), else "unknown".
func buildCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}
