package main

import (
	"fmt"
	"strings"
	"time"

	"rfipad/internal/experiments/scenario"
)

// scenarioPresetNames lists the registered matrices for usage errors.
func scenarioPresetNames() string {
	names := make([]string, 0, 2)
	for _, p := range scenario.Presets() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

// runScenarioBench expands and runs one scenario matrix through the
// real pipeline and writes the schema-versioned report to path.
func runScenarioBench(cfg scenario.Config, seed int64, parallel int, flightDir, path string) error {
	cfg.Seed = seed
	if parallel > 0 {
		cfg.Parallelism = parallel
	}
	cfg.FlightDir = flightDir

	start := time.Now()
	cells, err := scenario.Run(cfg)
	if err != nil {
		return fmt.Errorf("scenario bench: %w", err)
	}
	rep := scenario.NewReport(cfg, newProvenance(seed), cells)
	if err := rep.WriteFile(path); err != nil {
		return err
	}

	wall := time.Since(start).Round(time.Millisecond)
	trials, anomalies := 0, 0
	fmt.Printf("=== scenarios %q (%v)\n", cfg.Name, wall)
	fmt.Printf("%-40s %8s %7s %9s %7s %9s\n",
		"cell", "accuracy", "exact", "recovery", "drop", "p95 ms")
	for _, c := range cells {
		trials += len(c.TrialResults)
		anomalies += c.Anomalies
		fmt.Printf("%-40s %8.3f %7.2f %9.2f %7.3f %9.2f\n",
			c.Key, c.Accuracy, c.ExactRate, c.RecoveryRate, c.DropRate, c.LatencyP95Ms)
	}
	fmt.Printf("%d cells, %d trials, %d anomalous; wrote %s\n",
		len(cells), trials, anomalies, path)
	if anomalies > 0 && flightDir != "" {
		fmt.Printf("anomalous trials dumped to %s/flight.jsonl\n", flightDir)
	}
	return nil
}
