package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"rfipad/internal/experiments/scenario"
)

// flattenNumbers walks an unmarshalled JSON value and collects every
// numeric leaf under its dotted path ("core_scalar.readings_per_sec",
// "per_stream.stream-00.p95_ms", "wire_batch.0.events", ...).
func flattenNumbers(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenNumbers(p, child, out)
		}
	case []any:
		for i, child := range x {
			flattenNumbers(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	}
}

func loadNumbers(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flattenNumbers("", v, out)
	return out, nil
}

// runDiff compares two bench JSON reports — the CI before/after view
// against a committed baseline. When both inputs are scenario reports
// it gates cell-by-cell on the accuracy-class fields with the given
// tolerance and fails on regression; otherwise it prints the generic
// numeric field-by-field comparison, which never fails the run.
func runDiff(oldPath, newPath string, accuracyTol float64) error {
	if scenario.IsReport(oldPath) && scenario.IsReport(newPath) {
		return runScenarioDiff(oldPath, newPath, accuracyTol)
	}
	return runNumericDiff(oldPath, newPath)
}

// runScenarioDiff is the scenario-aware arm: a per-cell table of the
// gated fields, then a verdict. Latency columns are informational —
// machine noise would make a hard latency threshold flaky — while an
// accuracy, exact-rate, recovery-rate drop or a drop-rate rise beyond
// tolerance fails the diff.
func runScenarioDiff(oldPath, newPath string, tol float64) error {
	oldRep, err := scenario.Load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := scenario.Load(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("--- %s (%s) -> %s (%s), accuracy tolerance %.3f\n",
		oldPath, oldRep.Provenance.Commit, newPath, newRep.Provenance.Commit, tol)
	newCells := map[string]scenario.ScenarioResult{}
	for _, c := range newRep.Cells {
		newCells[c.Key] = c
	}
	fmt.Printf("%-40s %17s %13s %13s %13s\n",
		"cell", "accuracy", "exact", "recovery", "drop")
	for _, oc := range oldRep.Cells {
		nc, ok := newCells[oc.Key]
		if !ok {
			fmt.Printf("%-40s (missing from new report)\n", oc.Key)
			continue
		}
		fmt.Printf("%-40s %8.3f->%7.3f %6.2f->%5.2f %6.2f->%5.2f %6.3f->%5.3f\n",
			oc.Key, oc.Accuracy, nc.Accuracy, oc.ExactRate, nc.ExactRate,
			oc.RecoveryRate, nc.RecoveryRate, oc.DropRate, nc.DropRate)
	}
	regs, notes := scenario.Compare(oldRep, newRep, tol)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Println("REGRESSION:", r)
		}
		return fmt.Errorf("scenario diff: %d regression(s) beyond tolerance %.3f", len(regs), tol)
	}
	fmt.Println("scenario diff: no accuracy regressions")
	return nil
}

// runNumericDiff prints a numeric field-by-field comparison. Fields
// present on only one side are listed as added/removed; it never fails
// the run, it only reports.
func runNumericDiff(oldPath, newPath string) error {
	oldN, err := loadNumbers(oldPath)
	if err != nil {
		return err
	}
	newN, err := loadNumbers(newPath)
	if err != nil {
		return err
	}
	keys := map[string]bool{}
	for k := range oldN {
		keys[k] = true
	}
	for k := range newN {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fmt.Printf("--- %s -> %s\n", oldPath, newPath)
	for _, k := range sorted {
		o, haveOld := oldN[k]
		n, haveNew := newN[k]
		switch {
		case !haveOld:
			fmt.Printf("%-52s            ->%14.4g   (added)\n", k, n)
		case !haveNew:
			fmt.Printf("%-52s%14.4g ->              (removed)\n", k, o)
		case o == n:
			fmt.Printf("%-52s%14.4g\n", k, o)
		default:
			pct := ""
			if o != 0 && !math.IsInf(n/o, 0) {
				pct = fmt.Sprintf("  %+7.1f%%", (n/o-1)*100)
			}
			fmt.Printf("%-52s%14.4g ->%14.4g%s\n", k, o, n, pct)
		}
	}
	return nil
}
