package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// flattenNumbers walks an unmarshalled JSON value and collects every
// numeric leaf under its dotted path ("core_scalar.readings_per_sec",
// "per_stream.stream-00.p95_ms", "wire_batch.0.events", ...).
func flattenNumbers(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenNumbers(p, child, out)
		}
	case []any:
		for i, child := range x {
			flattenNumbers(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	}
}

func loadNumbers(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flattenNumbers("", v, out)
	return out, nil
}

// runDiff prints a numeric field-by-field comparison of two bench JSON
// reports — the CI before/after view against a committed baseline.
// Fields present on only one side are listed as added/removed; it never
// fails the run, it only reports.
func runDiff(oldPath, newPath string) error {
	oldN, err := loadNumbers(oldPath)
	if err != nil {
		return err
	}
	newN, err := loadNumbers(newPath)
	if err != nil {
		return err
	}
	keys := map[string]bool{}
	for k := range oldN {
		keys[k] = true
	}
	for k := range newN {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fmt.Printf("--- %s -> %s\n", oldPath, newPath)
	for _, k := range sorted {
		o, haveOld := oldN[k]
		n, haveNew := newN[k]
		switch {
		case !haveOld:
			fmt.Printf("%-52s            ->%14.4g   (added)\n", k, n)
		case !haveNew:
			fmt.Printf("%-52s%14.4g ->              (removed)\n", k, o)
		case o == n:
			fmt.Printf("%-52s%14.4g\n", k, o)
		default:
			pct := ""
			if o != 0 && !math.IsInf(n/o, 0) {
				pct = fmt.Sprintf("  %+7.1f%%", (n/o-1)*100)
			}
			fmt.Printf("%-52s%14.4g ->%14.4g%s\n", k, o, n, pct)
		}
	}
	return nil
}
