package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
)

// stageStats is one recognition stage's latency summary, estimated
// from the obs stage histograms.
type stageStats struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
}

// pipelineReport is the machine-readable BENCH_pipeline.json payload:
// end-to-end recognition throughput plus per-stage latency, so the
// perf trajectory is comparable across commits.
type pipelineReport struct {
	Word          string                `json:"word"`
	Reports       int                   `json:"reports"`
	StreamSeconds float64               `json:"stream_seconds"`
	WallSeconds   float64               `json:"wall_seconds"`
	ReportsPerSec float64               `json:"reports_per_sec"`
	SpeedupVsLive float64               `json:"speedup_vs_realtime"`
	Strokes       int                   `json:"strokes"`
	Letters       string                `json:"letters"`
	Stages        map[string]stageStats `json:"stages"`
}

// sliceSource feeds a synthesized capture to live.Run as fast as the
// pipeline drains it (no replay pacing), so wall time measures the
// recognition stack alone.
type sliceSource struct {
	reports []llrp.TagReport
	pos     int
}

func (s *sliceSource) NextReports() ([]llrp.TagReport, error) {
	const chunk = 256
	if s.pos >= len(s.reports) {
		return nil, llrp.ErrStreamEnded
	}
	end := s.pos + chunk
	if end > len(s.reports) {
		end = len(s.reports)
	}
	b := s.reports[s.pos:end]
	s.pos = end
	return b, nil
}

func (s *sliceSource) Stats() llrp.SessionStats { return llrp.SessionStats{} }

// runPipelineBench recognizes a synthesized word offline against a
// fresh metrics registry and writes the JSON report to path.
func runPipelineBench(seed int64, word, path string) error {
	reports, err := replay.Synthesize(seed, word, 3*time.Second)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	start := time.Now()
	res, err := live.Run(&sliceSource{reports: reports}, live.Config{Obs: reg})
	wall := time.Since(start)
	if err != nil {
		return fmt.Errorf("pipeline bench run: %w", err)
	}

	streamLen := reports[len(reports)-1].Timestamp
	snap := reg.Snapshot()
	stages := map[string]stageStats{}
	for _, stage := range []string{
		core.StageSegment, core.StageDisturbance, core.StageClassify,
		core.StageDirection, core.StageGrammar,
	} {
		p, ok := snap.Get("rfipad_stage_seconds", obs.L("stage", stage))
		if !ok {
			continue
		}
		stages[stage] = stageStats{
			Count: p.Count,
			P50Ms: p.Quantile(0.50) * 1e3,
			P95Ms: p.Quantile(0.95) * 1e3,
		}
	}
	rep := pipelineReport{
		Word:          word,
		Reports:       len(reports),
		StreamSeconds: streamLen.Seconds(),
		WallSeconds:   wall.Seconds(),
		ReportsPerSec: float64(len(reports)) / wall.Seconds(),
		SpeedupVsLive: streamLen.Seconds() / wall.Seconds(),
		Strokes:       res.Strokes,
		Letters:       res.Letters,
		Stages:        stages,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("=== pipeline (%v)\nrecognized %q: %d reports in %v (%.0f reports/s, %.1fx realtime); wrote %s\n",
		wall.Round(time.Millisecond), rep.Letters, rep.Reports,
		wall.Round(time.Millisecond), rep.ReportsPerSec, rep.SpeedupVsLive, path)
	return nil
}
