package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"rfipad"
	"rfipad/internal/core"
	"rfipad/internal/experiments/scenario"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
)

// ingestVariant is one measured configuration of the single-core
// ingest sweep.
type ingestVariant struct {
	Name             string  `json:"name"`
	BatchSize        int     `json:"batch_size"`
	WallSec          float64 `json:"wall_seconds"`
	ReadingsPerSec   float64 `json:"readings_per_sec"`
	NsPerReading     float64 `json:"ns_per_reading"`
	AllocsPerReading float64 `json:"allocs_per_reading"`
	BytesPerReading  float64 `json:"bytes_per_reading"`
	Events           int     `json:"events"`
}

// ingestBaseline records the per-reading path as it performed before
// the columnar ingest work, measured once with this same harness
// (identical seed, workload construction, and host) on the last
// pre-columnar commit. It is a recorded reference, not re-measured per
// run: the pre-columnar code no longer exists in the tree, and the
// roadmap's ≥10× target is phrased against exactly this rate (the
// ~200 ns/op ingest the tracing PR recorded).
type ingestBaseline struct {
	Commit                string  `json:"commit"`
	Note                  string  `json:"note"`
	SteadyNsPerReading    float64 `json:"steady_ns_per_reading"`
	SteadyPerSec          float64 `json:"steady_readings_per_sec"`
	WireLimitNsPerReading float64 `json:"wire_limit_ns_per_reading"`
	WireLimitPerSec       float64 `json:"wire_limit_readings_per_sec"`
}

// ingestReport is the machine-readable BENCH_ingest.json payload: the
// columnar hot path against the per-reading path, at the recognizer
// boundary (prebuilt readings, pure Ingest/IngestBatch) and end to end
// from wire payloads (LLRP decode → sanitize → recognize), plus the
// recorded pre-columnar baseline the speedup target is phrased
// against.
type ingestReport struct {
	Provenance     scenario.Provenance `json:"provenance"`
	Copies         int                 `json:"copies"`
	ReadingsPerLap int                 `json:"readings_per_lap"`
	Laps           int                 `json:"laps"`
	ReadingsTotal  int                 `json:"readings_total"`
	// CoreScalarSteady is the per-reading path on the natural-density
	// steady-state capture — the workload the engine bench feeds.
	CoreScalarSteady ingestVariant `json:"core_scalar_steady"`
	// CoreScalar is the per-reading path pushed to saturation on the
	// wire-limit workload, its best case (polls fully amortized).
	CoreScalar ingestVariant   `json:"core_scalar"`
	CoreBatch  []ingestVariant `json:"core_batch"`
	WireScalar ingestVariant   `json:"wire_scalar"`
	WireBatch  []ingestVariant `json:"wire_batch"`
	Baseline   ingestBaseline  `json:"pre_columnar_baseline"`
	// Speedup is the headline number: best columnar IngestBatch rate
	// over the pre-columnar per-reading rate on the steady-state
	// workload — single-core ingest capacity gained by this line of
	// work, the roadmap's target ratio.
	Speedup float64 `json:"speedup"`
	// SpeedupSameBuild compares the columnar path against this build's
	// own per-reading wrapper on the identical wire-limit workload —
	// the per-call overhead eliminated by batching alone, after the
	// shared-path wins (incremental segmentation, deferred trims) that
	// also sped the scalar path up.
	SpeedupSameBuild float64 `json:"speedup_same_build"`
	WireSpeedup      float64 `json:"wire_speedup"`
}

// Pre-columnar per-reading rates, measured at commit 8e2824c (the last
// commit before the columnar ingest work) with this harness: seed 21,
// 8 s quiet capture, per-reading Ingest, lap replay; dense = 16 copies
// at 2917 µs spacing. Steady state ran 194.4 ns/reading, saturation
// 52.8 ns/reading, both 0 allocs/reading.
const (
	baselineSteadyNs    = 194.4
	baselineWireLimitNs = 52.8
)

// denseWorkload interleaves `copies` time-offset replicas of a quiet
// capture into one strictly time-increasing stream — the wire-limit
// workload where hundreds of readings land inside each segmentation
// frame. The per-copy shift exceeds the capture's inter-read gap so
// the merged stream round-robins tags, the shape a reader's inventory
// loop actually produces at the wire limit. Equal timestamps would be
// dropped as same-tag duplicates, so collisions are nudged forward by
// 100 ns.
func denseWorkload(quiet []core.Reading, copies int) []core.Reading {
	out := make([]core.Reading, 0, len(quiet)*copies)
	for _, r := range quiet {
		for c := 0; c < copies; c++ {
			rc := r
			rc.Time += time.Duration(c) * 2917 * time.Microsecond
			out = append(out, rc)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	for i := 1; i < len(out); i++ {
		if out[i].Time <= out[i-1].Time {
			out[i].Time = out[i-1].Time + 100*time.Nanosecond
		}
	}
	return out
}

// measureIngest times `laps` passes of run with a GC fence around the
// whole measurement so the mallocs delta is attributable to the run.
// prep is called before every pass, outside the timer: replaying one
// captured lap means re-stamping its timestamps forward each pass,
// which is a harness artifact — a live stream arrives already stamped
// — so it must not be charged to the ingest path. Two warm passes run
// first, also untimed.
func measureIngest(name string, batchSize, laps, readingsPerLap int, prep func(lap int), run func()) ingestVariant {
	prep(0)
	run()
	prep(1)
	run()
	var before, after runtime.MemStats
	var wall time.Duration
	runtime.GC()
	runtime.ReadMemStats(&before)
	for l := 0; l < laps; l++ {
		prep(2 + l)
		start := time.Now()
		run()
		wall += time.Since(start)
	}
	runtime.ReadMemStats(&after)
	total := laps * readingsPerLap
	return ingestVariant{
		Name:             name,
		BatchSize:        batchSize,
		WallSec:          wall.Seconds(),
		ReadingsPerSec:   float64(total) / wall.Seconds(),
		NsPerReading:     float64(wall.Nanoseconds()) / float64(total),
		AllocsPerReading: float64(after.Mallocs-before.Mallocs) / float64(total),
		BytesPerReading:  float64(after.TotalAlloc-before.TotalAlloc) / float64(total),
	}
}

// runIngestBench measures single-core ingest throughput, per-reading
// path versus columnar batches, and writes the JSON report to path.
func runIngestBench(seed int64, copies int, path string) error {
	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{Seed: seed})
	if err != nil {
		return err
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		return err
	}
	quiet := sim.CollectStatic(8 * time.Second)
	if len(quiet) == 0 {
		return fmt.Errorf("ingest bench: empty quiet capture")
	}
	dense := denseWorkload(quiet, copies)
	lap := dense[len(dense)-1].Time + time.Millisecond
	grid := sim.Grid()

	laps := 1_200_000 / len(dense)
	if laps < 3 {
		laps = 3
	}

	// --- Recognizer boundary: prebuilt readings, pure hot path. ---

	// Per-reading path on the natural-density steady-state capture: the
	// rate the pre-columnar baseline is quoted at.
	recSS := core.NewRecognizer(core.NewPipeline(grid, cal), nil)
	eventsSS := 0
	quietS := append([]core.Reading(nil), quiet...)
	lapQuiet := quietS[len(quietS)-1].Time + time.Millisecond
	lapsSteady := 1_200_000 / len(quietS)
	if lapsSteady < 3 {
		lapsSteady = 3
	}
	steadyPrep := func(l int) {
		if l == 0 {
			return
		}
		for i := range quietS {
			quietS[i].Time += lapQuiet
		}
	}
	steadyRun := func() {
		for _, r := range quietS {
			eventsSS += len(recSS.Ingest(r))
		}
	}
	coreScalarSteady := measureIngest("core/ingest-steady", 1, lapsSteady, len(quietS), steadyPrep, steadyRun)
	coreScalarSteady.Events = eventsSS

	// Per-reading path at saturation: one Ingest call per reading of
	// the wire-limit workload. The variant owns a private copy,
	// re-stamped forward each lap by the untimed prep.
	recS := core.NewRecognizer(core.NewPipeline(grid, cal), nil)
	eventsS := 0
	denseS := append([]core.Reading(nil), dense...)
	scalarPrep := func(l int) {
		if l == 0 {
			return
		}
		for i := range denseS {
			denseS[i].Time += lap
		}
	}
	scalarRun := func() {
		for _, r := range denseS {
			eventsS += len(recS.Ingest(r))
		}
	}
	coreScalar := measureIngest("core/ingest", 1, laps, len(dense), scalarPrep, scalarRun)
	coreScalar.Events = eventsS

	// Columnar path: the same readings fed as views of one prebuilt
	// column set — the data already sits in struct-of-arrays form, as
	// it does downstream of a columnar decode, so the timed region is
	// the pure IngestBatch hot path.
	var coreBatch []ingestVariant
	for _, size := range []int{16, 64, 256, 1024} {
		recB := core.NewRecognizer(core.NewPipeline(grid, cal), nil)
		eventsB := 0
		baseCols := core.GetBatch()
		baseCols.Reset()
		for _, r := range dense {
			baseCols.AppendReading(r)
		}
		var view core.ReadingBatch
		batchPrep := func(l int) {
			if l == 0 {
				return
			}
			for i := range baseCols.Times {
				baseCols.Times[i] += lap
			}
		}
		batchRun := func() {
			for i := 0; i < baseCols.Len(); i += size {
				end := i + size
				if end > baseCols.Len() {
					end = baseCols.Len()
				}
				view = baseCols.Slice(i, end)
				eventsB += len(recB.IngestBatch(&view))
			}
		}
		v := measureIngest(fmt.Sprintf("core/ingest-batch-%d", size), size, laps, len(dense), batchPrep, batchRun)
		v.Events = eventsB
		coreBatch = append(coreBatch, v)
		core.PutBatch(baseCols)
	}

	// --- End to end from the wire: decode → sanitize → recognize. ---

	// One lap of wire payloads, framed at the live path's batch size.
	const wireFrame = 256
	var payloads [][]byte
	scratch := make([]llrp.TagReport, 0, wireFrame)
	for i := 0; i < len(dense); i += wireFrame {
		end := i + wireFrame
		if end > len(dense) {
			end = len(dense)
		}
		scratch = scratch[:0]
		for _, r := range dense[i:end] {
			scratch = append(scratch, llrp.TagReport{
				EPC: r.EPC, AntennaID: 1, PhaseRad: r.Phase,
				RSSdBm: r.RSS, DopplerHz: r.Doppler, Timestamp: r.Time,
			})
		}
		pl, err := llrp.EncodeReports(scratch)
		if err != nil {
			return err
		}
		payloads = append(payloads, pl)
	}

	// Per-reading wire path, as the pre-columnar pipeline ran it: a
	// freshly allocated report slice per frame, then per-reading
	// convert → admit → Ingest.
	recWS := core.NewRecognizer(core.NewPipeline(grid, cal), nil)
	sanS := core.NewSanitizer(obs.NewRegistry())
	eventsWS := 0
	var newestS time.Duration
	var offS time.Duration
	wireScalarPrep := func(l int) { offS = lap * time.Duration(l) }
	wireScalarRun := func() {
		off := offS
		for _, pl := range payloads {
			reports, err := llrp.DecodeReports(pl)
			if err != nil {
				panic(err)
			}
			for _, rep := range reports {
				rep.Timestamp += off
				rd := live.ReadingFromReport(rep)
				if !sanS.Admit(rd, newestS) {
					continue
				}
				if rd.Time > newestS {
					newestS = rd.Time
				}
				eventsWS += len(recWS.Ingest(rd))
			}
		}
	}
	wireScalar := measureIngest("wire/scalar", wireFrame, laps, len(dense), wireScalarPrep, wireScalarRun)
	wireScalar.Events = eventsWS

	// Columnar wire path: decode into a reused scratch, append straight
	// into pooled columns, admit and ingest in place.
	recWB := core.NewRecognizer(core.NewPipeline(grid, cal), nil)
	sanB := core.NewSanitizer(obs.NewRegistry())
	eventsWB := 0
	var newestB time.Duration
	var decodeScratch []llrp.TagReport
	colsW := core.GetBatch()
	var offB time.Duration
	wireBatchPrep := func(l int) { offB = lap * time.Duration(l) }
	wireBatchRun := func() {
		off := offB
		for _, pl := range payloads {
			reports, err := llrp.DecodeReportsInto(decodeScratch, pl)
			if err != nil {
				panic(err)
			}
			decodeScratch = reports
			for i := range reports {
				reports[i].Timestamp += off
			}
			colsW.Reset()
			live.AppendReports(colsW, reports)
			sanB.AdmitColumns(colsW, newestB)
			if n := colsW.Len(); n > 0 {
				newestB = colsW.Times[n-1]
			}
			eventsWB += len(recWB.IngestBatch(colsW))
		}
	}
	wireBatchV := measureIngest(fmt.Sprintf("wire/batch-%d", wireFrame), wireFrame, laps, len(dense), wireBatchPrep, wireBatchRun)
	wireBatchV.Events = eventsWB
	core.PutBatch(colsW)

	best := coreBatch[0]
	for _, v := range coreBatch[1:] {
		if v.ReadingsPerSec > best.ReadingsPerSec {
			best = v
		}
	}
	baseline := ingestBaseline{
		Commit:                "8e2824c",
		Note:                  "per-reading Ingest measured with this harness on the last pre-columnar commit, same host/seed/workloads; recorded, not re-measured per run",
		SteadyNsPerReading:    baselineSteadyNs,
		SteadyPerSec:          1e9 / baselineSteadyNs,
		WireLimitNsPerReading: baselineWireLimitNs,
		WireLimitPerSec:       1e9 / baselineWireLimitNs,
	}
	rep := ingestReport{
		Provenance:       newProvenance(seed),
		Copies:           copies,
		ReadingsPerLap:   len(dense),
		Laps:             laps,
		ReadingsTotal:    laps * len(dense),
		CoreScalarSteady: coreScalarSteady,
		CoreScalar:       coreScalar,
		CoreBatch:        coreBatch,
		WireScalar:       wireScalar,
		WireBatch:        []ingestVariant{wireBatchV},
		Baseline:         baseline,
		Speedup:          best.ReadingsPerSec / baseline.SteadyPerSec,
		SpeedupSameBuild: best.ReadingsPerSec / coreScalar.ReadingsPerSec,
		WireSpeedup:      wireBatchV.ReadingsPerSec / wireScalar.ReadingsPerSec,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("=== ingest (single core, %d readings)\nper-reading steady state: %.2f M readings/s (%.1f ns/reading; pre-columnar %.1f ns)\nper-reading saturated:    %.2f M readings/s (%.1f ns/reading)\ncolumnar:                 %.2f M readings/s (%.1f ns/reading, batch %d) — %.1fx vs pre-columnar steady state, %.1fx same-build\nwire e2e:                 %.2f M → %.2f M readings/s — %.1fx; wrote %s\n",
		rep.ReadingsTotal,
		coreScalarSteady.ReadingsPerSec/1e6, coreScalarSteady.NsPerReading, baselineSteadyNs,
		coreScalar.ReadingsPerSec/1e6, coreScalar.NsPerReading,
		best.ReadingsPerSec/1e6, best.NsPerReading, best.BatchSize, rep.Speedup, rep.SpeedupSameBuild,
		wireScalar.ReadingsPerSec/1e6, wireBatchV.ReadingsPerSec/1e6, rep.WireSpeedup, path)
	return nil
}
