package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"rfipad/internal/cluster"
	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/experiments/scenario"
	"rfipad/internal/live"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
	"rfipad/internal/supervise"
)

// clusterScalePoint is one node count in the scaling sweep: per-node
// stream load is fixed, so total work grows linearly with members and
// aggregate rate should track min(nodes, cores) if the coordinator
// adds no serial bottleneck.
type clusterScalePoint struct {
	Nodes          int     `json:"nodes"`
	Streams        int     `json:"streams"`
	ReadingsTotal  int     `json:"readings_total"`
	WallSec        float64 `json:"wall_seconds"`
	Rate           float64 `json:"readings_per_sec"`
	RatePerStream  float64 `json:"readings_per_sec_per_stream"`
	ScaleVsOneNode float64 `json:"scale_vs_one_node"`
}

// clusterFailover is the node-kill section: detection plus handoff
// timing and the outcome counters proving the migration restored
// calibration instead of recalibrating.
type clusterFailover struct {
	Nodes             int     `json:"nodes"`
	Streams           int     `json:"streams"`
	StreamsLost       int     `json:"streams_on_killed_node"`
	FailAfterMs       float64 `json:"fail_after_ms"`
	KillToRecoveredMs float64 `json:"kill_to_recovered_ms"`
	HandoffsRestored  float64 `json:"handoffs_restored"`
	HandoffsFallback  float64 `json:"handoffs_fallback_live"`
	HandoffRetries    float64 `json:"handoff_retries"`
	HandoffP50Ms      float64 `json:"handoff_p50_ms"`
	HandoffP95Ms      float64 `json:"handoff_p95_ms"`
	StreamsAdopted    float64 `json:"streams_adopted"`
	WordsCompleted    int     `json:"words_completed"`
}

// clusterReport is the machine-readable BENCH_cluster.json payload.
type clusterReport struct {
	Provenance     scenario.Provenance `json:"provenance"`
	Word           string              `json:"word"`
	Cores          int                 `json:"cores"`
	StreamsPerNode int                 `json:"streams_per_node"`
	Scaling        []clusterScalePoint `json:"scaling"`
	Failover       clusterFailover     `json:"failover"`
}

// benchBatches synthesizes one capture and chunks it into push-sized
// reading batches. stripPrelude drops the static prelude (for phase-2
// continuations that must ride a migrated calibration); shift offsets
// every timestamp to keep one stream clock monotonic across phases.
// maxTS is the largest post-shift timestamp.
func benchBatches(seed int64, word string, shift time.Duration, stripPrelude bool) (batches [][]core.Reading, maxTS time.Duration, err error) {
	const prelude = 3 * time.Second
	reports, err := replay.Synthesize(seed, word, prelude)
	if err != nil {
		return nil, 0, err
	}
	const chunk = 400
	var batch []core.Reading
	for _, rep := range reports {
		if stripPrelude && rep.Timestamp <= prelude {
			continue
		}
		rep.Timestamp += shift
		if rep.Timestamp > maxTS {
			maxTS = rep.Timestamp
		}
		batch = append(batch, live.ReadingFromReport(rep))
		if len(batch) == chunk {
			batches = append(batches, batch)
			batch = nil
		}
	}
	if len(batch) > 0 {
		batches = append(batches, batch)
	}
	return batches, maxTS, nil
}

// pushBlocking retries a shed push until the owner's mailbox accepts
// the batch, so the bench measures sustained throughput instead of
// drop rate.
func pushBlocking(c *cluster.Cluster, id engine.StreamID, batch []core.Reading) {
	for !c.Push(id, batch) {
		time.Sleep(200 * time.Microsecond)
	}
}

// benchTape collects recognized letters per stream across all nodes.
type benchTape struct {
	mu      sync.Mutex
	letters map[engine.StreamID]string
}

func newBenchTape() *benchTape { return &benchTape{letters: map[engine.StreamID]string{}} }

func (bt *benchTape) onEvent(_ cluster.NodeID, id engine.StreamID, ev core.Event) {
	if ev.Kind == core.LetterDeduced {
		bt.mu.Lock()
		bt.letters[id] += string(ev.Letter)
		bt.mu.Unlock()
	}
}

func (bt *benchTape) get(id engine.StreamID) string {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.letters[id]
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(timeout time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster bench: timed out after %v waiting for %s", timeout, what)
}

// runClusterScale measures one node count: a fresh cluster with
// streamsPerNode streams per member, every capture pushed flat out
// through the coordinator, wall time from first push through full
// drain (Close).
func runClusterScale(seed int64, word string, nodes, streamsPerNode int) (clusterScalePoint, error) {
	reg := obs.NewRegistry()
	c := cluster.New(cluster.Config{EngineWorkers: 1, Obs: reg})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(cluster.NodeID(fmt.Sprintf("node-%02d", i))); err != nil {
			c.Close()
			return clusterScalePoint{}, err
		}
	}
	streams := nodes * streamsPerNode
	captures := make(map[engine.StreamID][][]core.Reading, streams)
	total := 0
	for i := 0; i < streams; i++ {
		batches, _, err := benchBatches(seed+int64(i), word, 0, false)
		if err != nil {
			c.Close()
			return clusterScalePoint{}, err
		}
		id := engine.StreamID(fmt.Sprintf("stream-%02d", i))
		captures[id] = batches
		for _, b := range batches {
			total += len(b)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for id, batches := range captures {
		wg.Add(1)
		go func(id engine.StreamID, batches [][]core.Reading) {
			defer wg.Done()
			for _, b := range batches {
				pushBlocking(c, id, b)
			}
			c.FlushStream(id)
		}(id, batches)
	}
	wg.Wait()
	c.Close() // drains every node engine: all readings processed
	wall := time.Since(start)

	return clusterScalePoint{
		Nodes:         nodes,
		Streams:       streams,
		ReadingsTotal: total,
		WallSec:       wall.Seconds(),
		Rate:          float64(total) / wall.Seconds(),
		RatePerStream: float64(total) / wall.Seconds() / float64(streams),
	}, nil
}

// runClusterFailover kills a node mid-word and measures recovery: the
// failure detector's silence deadline, the checkpoint handoffs, and
// whether every stream finishes its word on the survivors with the
// migrated calibration (phase-2 captures carry no prelude, so a
// recalibrating stream cannot finish).
func runClusterFailover(nodes, streams int) (clusterFailover, error) {
	dir, err := os.MkdirTemp("", "rfipad-bench-cluster-")
	if err != nil {
		return clusterFailover{}, err
	}
	defer os.RemoveAll(dir)
	store, err := supervise.NewStore(dir)
	if err != nil {
		return clusterFailover{}, err
	}

	const failAfter = 200 * time.Millisecond
	reg := obs.NewRegistry()
	tape := newBenchTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		FailAfter:         failAfter,
		EngineWorkers:     1,
		Checkpoints:       store,
		CheckpointEvery:   100 * time.Millisecond,
		OnEvent:           tape.onEvent,
		Obs:               reg,
	})
	defer c.Close()
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(cluster.NodeID(fmt.Sprintf("node-%02d", i))); err != nil {
			return clusterFailover{}, err
		}
	}

	// Phase 1: every stream writes "IT" and calibrates. Seeds 80+ are
	// verified to recognize both phases cleanly.
	ids := make([]engine.StreamID, streams)
	phase2Shift := make(map[engine.StreamID]time.Duration, streams)
	for i := range ids {
		ids[i] = engine.StreamID(fmt.Sprintf("plate-%d", i))
		batches, maxTS, err := benchBatches(80+int64(i), "IT", 0, false)
		if err != nil {
			return clusterFailover{}, err
		}
		for _, b := range batches {
			pushBlocking(c, ids[i], b)
		}
		c.FlushStream(ids[i])
		phase2Shift[ids[i]] = maxTS + 3*time.Second
	}
	if err := waitUntil(60*time.Second, "phase-1 recognition", func() bool {
		for _, id := range ids {
			if tape.get(id) != "IT" {
				return false
			}
		}
		return true
	}); err != nil {
		return clusterFailover{}, err
	}

	// Kill the owner of plate-0 without warning.
	victim, ok := c.Owner(ids[0])
	if !ok {
		return clusterFailover{}, fmt.Errorf("cluster bench: no owner for %s", ids[0])
	}
	lost := 0
	for _, id := range ids {
		if owner, _ := c.Owner(id); owner == victim {
			lost++
		}
	}
	killed := time.Now()
	if !c.Kill(victim) {
		return clusterFailover{}, fmt.Errorf("cluster bench: Kill(%s) found no node", victim)
	}
	if err := waitUntil(30*time.Second, "failure detection and handoffs", func() bool {
		snap := reg.Snapshot()
		return snap.Value("cluster_node_failures_total") >= 1 &&
			snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")) >= float64(lost)
	}); err != nil {
		return clusterFailover{}, err
	}
	recovery := time.Since(killed)

	// Phase 2: prelude-free continuation on the survivors.
	for i, id := range ids {
		batches, _, err := benchBatches(80+int64(i), "LC", phase2Shift[id], true)
		if err != nil {
			return clusterFailover{}, err
		}
		for _, b := range batches {
			pushBlocking(c, id, b)
		}
		c.FlushStream(id)
	}
	completed := 0
	if err := waitUntil(60*time.Second, "phase-2 recognition", func() bool {
		completed = 0
		for _, id := range ids {
			if tape.get(id) == "ITLC" {
				completed++
			}
		}
		return completed == len(ids)
	}); err != nil {
		return clusterFailover{}, err
	}

	snap := reg.Snapshot()
	// The handoff histogram is labeled by trigger; a node kill records
	// under trigger=failure. Asking for the unlabeled series would match
	// nothing and its empty quantiles (NaN) are unrepresentable in JSON.
	handoff, _ := snap.Get("cluster_handoff_seconds", obs.L("trigger", "failure"))
	p50 := handoff.Quantile(0.50) * 1e3
	p95 := handoff.Quantile(0.95) * 1e3
	if math.IsNaN(p50) {
		p50, p95 = 0, 0
	}
	return clusterFailover{
		Nodes:             nodes,
		Streams:           streams,
		StreamsLost:       lost,
		FailAfterMs:       float64(failAfter) / float64(time.Millisecond),
		KillToRecoveredMs: float64(recovery) / float64(time.Millisecond),
		HandoffsRestored:  snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")),
		HandoffsFallback:  snap.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")),
		HandoffRetries:    snap.Value("cluster_handoff_retries_total"),
		HandoffP50Ms:      p50,
		HandoffP95Ms:      p95,
		StreamsAdopted:    snap.Value("engine_streams_adopted_total"),
		WordsCompleted:    completed,
	}, nil
}

// runClusterBench sweeps node counts with fixed per-node stream load,
// then runs the node-kill failover scenario, and writes the JSON
// report to path.
func runClusterBench(seed int64, word string, maxNodes, streamsPerNode int, path string) error {
	if maxNodes <= 0 {
		maxNodes = 3
	}
	if streamsPerNode <= 0 {
		streamsPerNode = 4
	}
	rep := clusterReport{Provenance: newProvenance(seed), Word: word,
		Cores: runtime.NumCPU(), StreamsPerNode: streamsPerNode}

	for n := 1; n <= maxNodes; n++ {
		pt, err := runClusterScale(seed, word, n, streamsPerNode)
		if err != nil {
			return fmt.Errorf("cluster bench scale n=%d: %w", n, err)
		}
		if len(rep.Scaling) == 0 {
			pt.ScaleVsOneNode = 1
		} else {
			pt.ScaleVsOneNode = pt.Rate / rep.Scaling[0].Rate
		}
		rep.Scaling = append(rep.Scaling, pt)
		fmt.Printf("cluster scale: %d node(s) × %d stream(s): %.0f readings/s (%.2fx one node)\n",
			pt.Nodes, streamsPerNode, pt.Rate, pt.ScaleVsOneNode)
	}

	failNodes := maxNodes
	if failNodes < 3 {
		failNodes = 3
	}
	fo, err := runClusterFailover(failNodes, 4)
	if err != nil {
		return fmt.Errorf("cluster bench failover: %w", err)
	}
	rep.Failover = fo

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("=== cluster\nfailover: killed 1 of %d nodes (%d stream(s) lost), recovered in %.0f ms, handoff p95 %.1f ms, %d/%d words completed; wrote %s\n",
		fo.Nodes, fo.StreamsLost, fo.KillToRecoveredMs, fo.HandoffP95Ms,
		fo.WordsCompleted, fo.Streams, path)
	return nil
}
