// Command rfipad-bench regenerates every table and figure of the
// paper's evaluation (§V) plus the DESIGN.md ablations.
//
// It also measures the live recognition pipeline itself (throughput
// and per-stage latency from the obs histograms) and writes the
// machine-readable BENCH_pipeline.json so the perf trajectory is
// tracked across commits.
//
// Usage:
//
//	rfipad-bench -list
//	rfipad-bench                 # quick pass over every experiment + pipeline bench
//	rfipad-bench -full           # paper-scale sample sizes (slow)
//	rfipad-bench -run table1     # one experiment
//	rfipad-bench -pipeline       # only the pipeline bench (BENCH_pipeline.json)
//	rfipad-bench -engine         # only the multi-stream engine bench (BENCH_engine.json)
//	rfipad-bench -engine -engine-streams 16 -engine-workers 4
//	rfipad-bench -cluster        # only the multi-node cluster bench (BENCH_cluster.json)
//	rfipad-bench -cluster -cluster-nodes 4 -cluster-streams-per-node 4
//	rfipad-bench -ingest         # single-core columnar vs per-reading ingest (BENCH_ingest.json)
//	rfipad-bench -ingest -ingest-copies 32
//	rfipad-bench -scenarios      # scenario matrix, smoke preset (BENCH_scenarios.json)
//	rfipad-bench -scenarios-full # scenario matrix, every axis populated
//	rfipad-bench -scenarios -scenario-preset full
//	rfipad-bench -diff OLD.json NEW.json   # field-by-field comparison of two reports
//	rfipad-bench -diff OLD.json NEW.json -diff-accuracy-tol 0.02   # scenario reports: gated cell diff
//	rfipad-bench -trials 10 -groups 3 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfipad/internal/experiments"
	"rfipad/internal/experiments/scenario"
)

func main() {
	os.Exit(run())
}

// usageError prints a flag-validation failure plus usage and returns
// exit code 2.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "rfipad-bench: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		full     = flag.Bool("full", false, "use the paper's sample sizes (20 trials × 3 groups)")
		name     = flag.String("run", "", "run a single experiment by name")
		trials   = flag.Int("trials", 0, "override trials per motion per group")
		groups   = flag.Int("groups", 0, "override independent deployment groups")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 4, "concurrent groups")

		pipeline     = flag.Bool("pipeline", false, "run only the recognition-pipeline bench")
		pipelineJSON = flag.String("pipeline-json", "BENCH_pipeline.json", "output path for the pipeline bench report")
		pipelineWord = flag.String("pipeline-word", "HELLO", "word the pipeline bench recognizes")

		engineBench   = flag.Bool("engine", false, "run only the sharded multi-stream engine bench")
		engineJSON    = flag.String("engine-json", "BENCH_engine.json", "output path for the engine bench report")
		engineStreams = flag.Int("engine-streams", 16, "concurrent streams the engine bench fans out")
		engineWorkers = flag.Int("engine-workers", 0, "engine shard workers (0 = GOMAXPROCS)")

		clusterBench   = flag.Bool("cluster", false, "run only the multi-node cluster bench (scaling sweep + node-kill failover)")
		clusterJSON    = flag.String("cluster-json", "BENCH_cluster.json", "output path for the cluster bench report")
		clusterNodes   = flag.Int("cluster-nodes", 3, "largest node count in the cluster scaling sweep")
		clusterStreams = flag.Int("cluster-streams-per-node", 4, "streams per node in the cluster scaling sweep")

		ingestBench  = flag.Bool("ingest", false, "run only the single-core columnar-vs-scalar ingest sweep")
		ingestJSON   = flag.String("ingest-json", "BENCH_ingest.json", "output path for the ingest bench report")
		ingestCopies = flag.Int("ingest-copies", 16, "workload density: interleaved replicas of the quiet capture")

		scenarios     = flag.Bool("scenarios", false, "run the scenario matrix through the real pipeline (smoke preset)")
		scenariosFull = flag.Bool("scenarios-full", false, "run the full scenario matrix (every axis populated)")
		scenarioName  = flag.String("scenario-preset", "", "scenario preset to run (overrides -scenarios/-scenarios-full selection)")
		scenariosJSON = flag.String("scenarios-json", "BENCH_scenarios.json", "output path for the scenario matrix report")
		flightDir     = flag.String("flight-dir", os.Getenv("RFIPAD_FLIGHT_DIR"), "flight-recorder directory for anomalous scenario trials (default $RFIPAD_FLIGHT_DIR)")

		diff    = flag.Bool("diff", false, "compare two bench JSON reports: rfipad-bench -diff OLD.json NEW.json")
		diffTol = flag.Float64("diff-accuracy-tol", 0.05, "per-cell accuracy tolerance when -diff compares two scenario reports")
	)
	flag.Parse()

	switch {
	case *trials < 0 || *groups < 0:
		return usageError("-trials and -groups must be non-negative")
	case *parallel <= 0:
		return usageError("-parallel must be positive (got %d)", *parallel)
	case *engineStreams <= 0:
		return usageError("-engine-streams must be positive (got %d)", *engineStreams)
	case *engineWorkers < 0:
		return usageError("-engine-workers must be non-negative (got %d)", *engineWorkers)
	case *clusterNodes <= 0:
		return usageError("-cluster-nodes must be positive (got %d)", *clusterNodes)
	case *clusterStreams <= 0:
		return usageError("-cluster-streams-per-node must be positive (got %d)", *clusterStreams)
	case *pipelineWord == "":
		return usageError("-pipeline-word must be non-empty")
	case *ingestCopies <= 0:
		return usageError("-ingest-copies must be positive (got %d)", *ingestCopies)
	case *diffTol < 0:
		return usageError("-diff-accuracy-tol must be non-negative (got %g)", *diffTol)
	}

	if *diff {
		if flag.NArg() != 2 {
			return usageError("-diff takes exactly two report paths (got %d)", flag.NArg())
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *diffTol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *scenarios || *scenariosFull || *scenarioName != "" {
		preset := "smoke"
		if *scenariosFull {
			preset = "full"
		}
		if *scenarioName != "" {
			preset = *scenarioName
		}
		cfg, ok := scenario.Preset(preset)
		if !ok {
			return usageError("unknown scenario preset %q (registered: %s)",
				preset, scenarioPresetNames())
		}
		if err := runScenarioBench(cfg, *seed, *parallel, *flightDir, *scenariosJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	// Ctrl-C aborts between experiments instead of mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pipeline {
		if err := runPipelineBench(*seed, *pipelineWord, *pipelineJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *engineBench {
		if err := runEngineBench(*seed, *pipelineWord, *engineStreams, *engineWorkers, *engineJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *clusterBench {
		if err := runClusterBench(*seed, *pipelineWord, *clusterNodes, *clusterStreams, *clusterJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *ingestBench {
		if err := runIngestBench(*seed, *ingestCopies, *ingestJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%-22s %s\n", e.Name, e.Description)
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *groups > 0 {
		cfg.Groups = *groups
	}

	if *name != "" {
		start := time.Now()
		res, ok := experiments.Run(*name, cfg)
		if !ok {
			names := make([]string, 0, 32)
			for _, e := range experiments.List() {
				names = append(names, e.Name)
			}
			return usageError("unknown experiment %q (registered: %s)",
				*name, strings.Join(names, ", "))
		}
		fmt.Printf("=== %s (%v)\n%s\n", res.Name(), time.Since(start).Round(time.Millisecond), res)
		return 0
	}

	for _, e := range experiments.List() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted")
			return 0
		}
		start := time.Now()
		res, _ := experiments.Run(e.Name, cfg)
		fmt.Printf("=== %s (%v)\n%s\n", e.Name, time.Since(start).Round(time.Millisecond), res)
	}
	if err := runPipelineBench(*seed, *pipelineWord, *pipelineJSON); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
