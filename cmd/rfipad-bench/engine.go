package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"rfipad/internal/engine"
	"rfipad/internal/experiments/scenario"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
)

// streamLatency is one stream's event-latency summary from the
// engine_event_latency_seconds histogram.
type streamLatency struct {
	Events  uint64  `json:"events"`
	Letters string  `json:"letters"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
}

// engineReport is the machine-readable BENCH_engine.json payload: the
// sharded engine's aggregate throughput, its scaling against a
// single-stream run on the same captures, steady-state allocation
// rate, and per-stream event latency.
type engineReport struct {
	Provenance        scenario.Provenance      `json:"provenance"`
	Word              string                   `json:"word"`
	Streams           int                      `json:"streams"`
	Workers           int                      `json:"workers"`
	Cores             int                      `json:"cores"`
	ReadingsPerStream int                      `json:"readings_per_stream"`
	ReadingsTotal     int                      `json:"readings_total"`
	SingleWallSec     float64                  `json:"single_stream_wall_seconds"`
	SingleRate        float64                  `json:"single_stream_readings_per_sec"`
	MultiWallSec      float64                  `json:"multi_stream_wall_seconds"`
	MultiRate         float64                  `json:"multi_stream_readings_per_sec"`
	ScaleFactor       float64                  `json:"scale_factor"`
	AllocsPerReading  float64                  `json:"allocs_per_reading"`
	BytesPerReading   float64                  `json:"bytes_per_reading"`
	Overflow          uint64                   `json:"overflow_batches"`
	PerStream         map[string]streamLatency `json:"per_stream"`
}

// runEngineLoad pushes every capture through a fresh engine (one
// unpaced source goroutine per stream) and returns the wall time plus
// the per-run registry and results.
func runEngineLoad(captures map[engine.StreamID][]llrp.TagReport, workers int) (time.Duration, *obs.Registry, []engine.StreamResult, error) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: workers, Obs: reg})
	var wg sync.WaitGroup
	errs := make(chan error, len(captures))
	start := time.Now()
	for id, reports := range captures {
		wg.Add(1)
		go func(id engine.StreamID, reports []llrp.TagReport) {
			defer wg.Done()
			if err := eng.RunStream(id, &sliceSource{reports: reports}); err != nil {
				errs <- err
			}
		}(id, reports)
	}
	wg.Wait()
	results := eng.Close()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, nil, nil, err
	}
	return wall, reg, results, nil
}

// runEngineBench measures the sharded engine: a single-stream baseline
// run, then the full fan-out, with allocation accounting around the
// multi-stream run. It writes the JSON report to path.
func runEngineBench(seed int64, word string, streams, workers int, path string) error {
	if streams <= 0 {
		streams = 16
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	captures := map[engine.StreamID][]llrp.TagReport{}
	for i := 0; i < streams; i++ {
		reports, err := replay.Synthesize(seed+int64(i), word, 3*time.Second)
		if err != nil {
			return err
		}
		captures[engine.StreamID(fmt.Sprintf("stream-%02d", i))] = reports
	}
	perStream := len(captures["stream-00"])
	total := 0
	for _, reports := range captures {
		total += len(reports)
	}

	// Single-stream baseline on the first capture.
	single := map[engine.StreamID][]llrp.TagReport{"stream-00": captures["stream-00"]}
	singleWall, _, _, err := runEngineLoad(single, 1)
	if err != nil {
		return fmt.Errorf("engine bench single-stream: %w", err)
	}

	// Full fan-out, with allocation accounting. A GC fence before each
	// ReadMemStats keeps the mallocs delta attributable to the run.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	multiWall, reg, results, err := runEngineLoad(captures, workers)
	if err != nil {
		return fmt.Errorf("engine bench multi-stream: %w", err)
	}
	runtime.ReadMemStats(&after)

	snap := reg.Snapshot()
	per := map[string]streamLatency{}
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("engine bench stream %s: %w", res.ID, res.Err)
		}
		p, _ := snap.Get("engine_event_latency_seconds", obs.L("stream", string(res.ID)))
		per[string(res.ID)] = streamLatency{
			Events:  p.Count,
			Letters: res.Letters,
			P50Ms:   p.Quantile(0.50) * 1e3,
			P95Ms:   p.Quantile(0.95) * 1e3,
		}
	}

	singleRate := float64(perStream) / singleWall.Seconds()
	multiRate := float64(total) / multiWall.Seconds()
	rep := engineReport{
		Provenance:        newProvenance(seed),
		Word:              word,
		Streams:           streams,
		Workers:           workers,
		Cores:             runtime.NumCPU(),
		ReadingsPerStream: perStream,
		ReadingsTotal:     total,
		SingleWallSec:     singleWall.Seconds(),
		SingleRate:        singleRate,
		MultiWallSec:      multiWall.Seconds(),
		MultiRate:         multiRate,
		ScaleFactor:       multiRate / singleRate,
		AllocsPerReading:  float64(after.Mallocs-before.Mallocs) / float64(total),
		BytesPerReading:   float64(after.TotalAlloc-before.TotalAlloc) / float64(total),
		Overflow:          uint64(snap.Value("engine_overflow_total")),
		PerStream:         per,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("=== engine (%v)\n%d streams / %d workers on %d core(s): %.0f readings/s aggregate (%.2fx single-stream), %.1f allocs/reading; wrote %s\n",
		multiWall.Round(time.Millisecond), streams, workers, rep.Cores,
		multiRate, rep.ScaleFactor, rep.AllocsPerReading, path)
	return nil
}
