//go:build !race

package rfipad

// raceEnabled reports whether the race detector is active. The
// allocation-regression tests skip their exact assertions under -race:
// the detector's shadow-memory bookkeeping allocates on paths the pure
// build does not, making testing.AllocsPerRun unreliable there. The
// paths themselves still run race-instrumented via the functional
// tests.
const raceEnabled = false
