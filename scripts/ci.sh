#!/bin/sh
# CI gate: vet, build, and race-test the whole module.
# Usage: scripts/ci.sh  (from the repo root or anywhere inside it)
set -eu

cd "$(dirname "$0")/.."

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== go test -race ./...'
go test -race ./...

echo 'CI OK'
