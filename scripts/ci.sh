#!/bin/sh
# CI gate: vet, lint, build, and race-test the whole module.
# Usage: scripts/ci.sh  (from the repo root or anywhere inside it)
#
# staticcheck and govulncheck run when present on PATH (the GitHub
# workflow installs them); locally they are skipped with a note rather
# than failing, so the gate needs nothing beyond the Go toolchain.
set -eu

cd "$(dirname "$0")/.."

echo '== go vet ./...'
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo '== staticcheck ./...'
    staticcheck ./...
else
    echo '== staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)'
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo '== govulncheck ./...'
    govulncheck ./...
else
    echo '== govulncheck: not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)'
fi

echo '== go build ./...'
go build ./...

echo '== go test -race -shuffle=on ./...'
go test -race -shuffle=on ./...

# The self-healing paths are timing-sensitive (panic quarantine, drain
# deadlines, kill/restore); run them twice under the race detector so a
# flaky interleaving fails the gate instead of slipping through. The
# cluster node-kill chaos tests ride along: heartbeat failure
# detection and checkpoint handoff are nothing but timing. The trace
# and flight-recorder chaos tests (stitched traces, anomaly dumps) are
# part of the same set; with RFIPAD_FLIGHT_DIR exported (the workflow
# does), their flight.jsonl dumps survive for artifact upload when the
# job fails.
echo '== chaos + recovery tests (-race -count=2)'
go test -race -count=2 \
    -run 'TestEnginePanic|TestEngineSourcePanic|TestEngineCheckpoint|TestEngineDrain|TestCheckpointRestore|TestCheckpointStale|TestSessionBreaker|TestClusterNodeKill|TestClusterHandoff|TestClusterLeave|TestClusterFlight' \
    ./internal/engine ./internal/live ./internal/llrp ./internal/cluster

# Split-brain containment: asymmetric partitions (heartbeats severed,
# data paths up), zombie owners whose watchdog is suspended, epoch
# continuity across a coordinator restart, and a handoff whose ack is
# eaten by a one-way partition. These pin the lease/fencing invariant —
# no two nodes are ever active writers for one stream — so they run
# twice under the race detector like the rest of the chaos set.
echo '== partition chaos tests (-race -count=2)'
go test -race -count=2 \
    -run 'TestClusterZombie|TestClusterAsymmetric|TestClusterCoordinatorRestart|TestClusterHandoffOneWay|TestEngineFenced|TestDropWrites|TestDropReads' \
    ./internal/engine ./internal/cluster ./internal/faultnet

# Short fuzz pass over the checkpoint decoder: corrupt files must decode
# to typed errors, never panic a daemon at boot. New crashers land in
# internal/supervise/testdata/fuzz for the workflow to archive.
echo '== checkpoint decoder fuzz smoke (10s)'
go test -run '^$' -fuzz FuzzDecodeCheckpoint -fuzztime 10s ./internal/supervise

# The exact AllocsPerRun assertions skip themselves under -race (the
# detector allocates on instrumented paths), so run them again pure.
# This covers the recognizer hot path, the disturbance scratch map,
# and the unsampled/sampled tracing paths (0 allocs per span).
echo '== alloc regression tests (pure build)'
go test -run 'Allocs' . ./internal/obs/trace

echo '== bench smoke (hot path + engine + columnar ingest, 1 iteration)'
go test -run '^$' -bench 'BenchmarkRecognizerIngestSteadyState|BenchmarkEngineMultiStream|BenchmarkStreamingIngest$|BenchmarkIngestBatch$' \
    -benchtime=1x -benchmem . | tee bench_smoke.txt
# The columnar batch path must stay allocation-free at steady state:
# any allocation on BenchmarkIngestBatch is a hot-path regression, so
# it fails the gate outright.
if ! grep 'BenchmarkIngestBatch' bench_smoke.txt | grep -q ' 0 allocs/op'; then
    echo 'FAIL: BenchmarkIngestBatch allocates on the steady-state workload'
    exit 1
fi

# Bench reports: stash the committed baselines, regenerate each report,
# then print a field-by-field before/after comparison. The diff is
# informational (machine noise would make a hard threshold flaky); the
# uploaded artifacts and the committed baselines carry the numbers.
echo '== bench reports (BENCH_engine / BENCH_cluster / BENCH_ingest)'
for name in engine cluster ingest; do
    if [ -f "BENCH_${name}.json" ]; then
        cp "BENCH_${name}.json" "BENCH_${name}.baseline.json"
    fi
done
go run ./cmd/rfipad-bench -engine -engine-streams 8 -engine-json BENCH_engine.json
go run ./cmd/rfipad-bench -cluster -cluster-nodes 3 -cluster-json BENCH_cluster.json
go run ./cmd/rfipad-bench -ingest -ingest-json BENCH_ingest.json
for name in engine cluster ingest; do
    if [ -f "BENCH_${name}.baseline.json" ]; then
        echo "== bench diff: ${name} (committed baseline -> this run)"
        go run ./cmd/rfipad-bench -diff "BENCH_${name}.baseline.json" "BENCH_${name}.json"
        rm -f "BENCH_${name}.baseline.json"
    fi
done

# Scenario-matrix accuracy gate: rerun the smoke matrix through the
# real pipeline (llrp server -> faultnet -> session -> engine) and diff
# it cell-by-cell against the committed baseline. Unlike the bench
# diffs above, this one is HARD: an accuracy/exact/recovery drop or a
# drop-rate rise beyond tolerance exits nonzero. The committed
# BENCH_scenarios.json is the floor of the observed run-to-run spread
# (flaky-link cells land at either 0.75 or 1.0 depending on where the
# reconnect cuts a letter), so tolerance 0.1 only has to absorb
# drop-rate jitter (~±0.006), not the bimodal accuracy swing.
echo '== scenario matrix accuracy gate (smoke preset)'
go run ./cmd/rfipad-bench -scenarios -scenarios-json BENCH_scenarios.ci.json
go run ./cmd/rfipad-bench -diff -diff-accuracy-tol 0.1 BENCH_scenarios.json BENCH_scenarios.ci.json

# Self-test the gate: inject an accuracy collapse into the fresh report
# and assert the diff flags it. The no-fault/full-grid cells are pinned
# at accuracy 1 in every run, so the sed always has a target; if the
# tampered diff passes, the gate itself has regressed.
sed 's/"accuracy": 1,/"accuracy": 0.1,/' BENCH_scenarios.ci.json > BENCH_scenarios.tampered.json
if go run ./cmd/rfipad-bench -diff -diff-accuracy-tol 0.1 BENCH_scenarios.json BENCH_scenarios.tampered.json >/dev/null 2>&1; then
    echo 'FAIL: scenario diff did not flag an injected accuracy regression'
    exit 1
fi
echo '== scenario gate self-test: injected regression caught'
rm -f BENCH_scenarios.tampered.json

echo 'CI OK'
