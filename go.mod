module rfipad

go 1.22
