// Package rfipad is a Go reproduction of "RFIPad: Enabling
// Cost-efficient and Device-free In-air Handwriting using Passive Tags"
// (Ding et al., IEEE ICDCS 2017).
//
// RFIPad turns an array of passive UHF RFID tags into a contactless
// virtual touch screen: a commodity reader streams per-tag phase and
// RSS while a hand writes in the air above the plate, and the pipeline
// in this package recovers basic motions, their directions, and
// English letters.
//
// The paper's prototype is COTS hardware (Impinj Speedway R420 + Laird
// panel + 25 tags). This package ships a physics-based simulation
// substrate in its place (see DESIGN.md): backscatter link budgets,
// EPC C1G2 inventory timing, tag coupling, hand-motion synthesis, and
// the four lab environments the paper evaluates in. The recognition
// pipeline itself is hardware-agnostic — it consumes the same
// (EPC, phase, RSS, Doppler, timestamp) records a real reader reports,
// and the llrp wire protocol in cmd/rfipad-readerd carries exactly
// those records over TCP.
//
// Quick start:
//
//	sim, _ := rfipad.NewSimulator(rfipad.SimulatorConfig{Seed: 1})
//	cal, _ := sim.Calibrate(3 * time.Second)
//	rec := sim.NewRecognizer(cal)
//	readings, _ := sim.PerformMotion(rfipad.M(rfipad.Vertical, rfipad.Forward), 42)
//	for _, r := range readings {
//	    for _, ev := range rec.Ingest(r) { ... }
//	}
package rfipad

import (
	"fmt"
	"math/rand"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/epc"
	"rfipad/internal/grammar"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
	"rfipad/internal/stroke"
	"rfipad/internal/tagmodel"
)

// Re-exported recognition types. These aliases are the public names of
// the engine's types; the internal packages are implementation detail.
type (
	// Reading is one tag report: EPC, phase, RSS, Doppler, timestamp.
	Reading = core.Reading
	// ReadingBatch is the columnar (struct-of-arrays) batch form of a
	// run of readings — the ingest hot path end to end.
	ReadingBatch = core.ReadingBatch
	// Calibration holds the per-tag statistics for diversity
	// suppression, learned from a static capture.
	Calibration = core.Calibration
	// Pipeline is the offline recognition pipeline.
	Pipeline = core.Pipeline
	// Recognizer is the online (streaming) engine.
	Recognizer = core.Recognizer
	// Event is a streaming recognition output (stroke or letter).
	Event = core.Event
	// MotionResult is one recognized stroke window.
	MotionResult = core.MotionResult
	// Span is a detected stroke interval.
	Span = core.Span
	// Segmenter separates strokes from the continuous phase stream.
	Segmenter = core.Segmenter
	// Grid describes the tag-array geometry.
	Grid = core.Grid
	// Motion is a basic hand motion (shape + direction).
	Motion = stroke.Motion
	// Shape is one of the seven basic stroke shapes.
	Shape = stroke.Shape
	// Direction distinguishes the two drawing directions of a shape.
	Direction = stroke.Direction
	// User is a writer profile for the simulator.
	User = hand.User
	// EPC is a 96-bit tag identifier.
	EPC = tagmodel.EPC
)

// Shape and direction vocabulary (§II-C of the paper).
const (
	Click      = stroke.Click
	Horizontal = stroke.Horizontal
	Vertical   = stroke.Vertical
	SlashUp    = stroke.SlashUp
	SlashDown  = stroke.SlashDown
	ArcLeft    = stroke.ArcLeft
	ArcRight   = stroke.ArcRight

	Forward = stroke.Forward
	Reverse = stroke.Reverse
)

// Event kinds emitted by the Recognizer.
const (
	StrokeDetected = core.StrokeDetected
	LetterDeduced  = core.LetterDeduced
)

// GetBatch returns an empty ReadingBatch from the shared pool; return
// it with PutBatch once consumed.
func GetBatch() *ReadingBatch { return core.GetBatch() }

// PutBatch resets a batch and returns it to the shared pool.
func PutBatch(b *ReadingBatch) { core.PutBatch(b) }

// M builds a Motion.
func M(s Shape, d Direction) Motion { return stroke.M(s, d) }

// AllMotions returns the 13 motions of the paper's evaluation.
func AllMotions() []Motion { return stroke.All() }

// Calibrate computes diversity-suppression statistics from a static
// capture (no hand present). numTags is the array population.
func Calibrate(static []Reading, numTags int) (*Calibration, error) {
	return core.Calibrate(static, numTags)
}

// NewPipeline builds the offline pipeline for a tag grid.
func NewPipeline(grid Grid, cal *Calibration) *Pipeline {
	return core.NewPipeline(grid, cal)
}

// NewRecognizer builds the streaming engine; seg may be nil for the
// paper's segmentation parameters.
func NewRecognizer(p *Pipeline, seg *Segmenter) *Recognizer {
	return core.NewRecognizer(p, seg)
}

// ComposeLetter deduces a letter from recognized strokes.
func ComposeLetter(obs []core.StrokeObservation) (rune, bool) {
	return core.ComposeLetter(obs)
}

// LetterStrokes returns the canonical stroke decomposition of a letter
// ('A'–'Z') per the tree-structure grammar.
func LetterStrokes(ch rune) ([]grammar.Placed, bool) {
	l, ok := grammar.Lookup(ch)
	if !ok {
		return nil, false
	}
	return l.Strokes, true
}

// Placement selects the reader antenna position.
type Placement string

// Antenna placements (§V-A).
const (
	// NLOS mounts the antenna behind the tag board — the paper's
	// default and best performer.
	NLOS Placement = "nlos"
	// LOS mounts the antenna on the ceiling above the plate.
	LOS Placement = "los"
)

// SimulatorConfig configures a simulated deployment. Zero values take
// the paper's defaults (NLOS, 32 cm, 30 dBm, location #1).
type SimulatorConfig struct {
	// Seed drives every random process; equal seeds reproduce runs
	// exactly.
	Seed int64
	// Placement of the reader antenna.
	Placement Placement
	// Location selects the multipath environment (1–4, Fig. 15).
	Location int
	// TxPowerDBm is the reader transmit power (15–32.5).
	TxPowerDBm float64
	// ReaderDistanceM is the antenna-to-plane distance for NLOS.
	ReaderDistanceM float64
	// AngleDeg tilts the antenna relative to the plate.
	AngleDeg float64
	// Writer is the user profile performing motions; zero value uses
	// the median volunteer.
	Writer User
	// FastMAC selects the §VI low-throughput mitigation: shorter tag
	// packets roughly double the read rate at the cost of link margin.
	FastMAC bool
}

// Simulator is a fully simulated RFIPad deployment: tag array, radio
// channel, EPC Gen2 reader, and a synthetic writer.
type Simulator struct {
	sys    *sim.System
	writer User
	seed   int64
}

// NewSimulator builds a simulated deployment.
func NewSimulator(cfg SimulatorConfig) (*Simulator, error) {
	sc := scene.Config{
		TxPowerDBm:     cfg.TxPowerDBm,
		ReaderDistance: cfg.ReaderDistanceM,
		AngleDeg:       cfg.AngleDeg,
	}
	switch cfg.Placement {
	case "", NLOS:
		sc.Placement = scene.NLOS
	case LOS:
		sc.Placement = scene.LOS
	default:
		return nil, fmt.Errorf("rfipad: unknown placement %q", cfg.Placement)
	}
	if cfg.Location != 0 {
		if cfg.Location < 1 || cfg.Location > 4 {
			return nil, fmt.Errorf("rfipad: location %d out of range 1–4", cfg.Location)
		}
		sc.Location = scene.Location(cfg.Location)
	}
	writer := cfg.Writer
	if writer == (User{}) {
		writer = hand.DefaultUser()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(sc, rng)
	var opts []sim.Option
	if cfg.FastMAC {
		opts = append(opts, sim.WithMACConfig(epc.FastConfig()))
	}
	return &Simulator{
		sys:    sim.New(dep, rng, opts...),
		writer: writer,
		seed:   cfg.Seed,
	}, nil
}

// Grid returns the tag-array geometry.
func (s *Simulator) Grid() Grid { return s.sys.Grid }

// Volunteers returns the paper's ten-user panel (§V-B6).
func Volunteers() []User { return hand.Volunteers() }

// DefaultUser returns the median writer profile.
func DefaultUser() User { return hand.DefaultUser() }

// Calibrate performs the deployment-time static capture.
func (s *Simulator) Calibrate(d time.Duration) (*Calibration, error) {
	return s.sys.Calibrate(d)
}

// CollectStatic gathers readings with no hand present.
func (s *Simulator) CollectStatic(d time.Duration) []Reading {
	return s.sys.CollectStatic(d)
}

// NewPipeline builds the offline pipeline for this deployment.
func (s *Simulator) NewPipeline(cal *Calibration) *Pipeline {
	return core.NewPipeline(s.sys.Grid, cal)
}

// NewRecognizer builds a streaming recognizer for this deployment.
func (s *Simulator) NewRecognizer(cal *Calibration) *Recognizer {
	return core.NewRecognizer(s.NewPipeline(cal), nil)
}

// PerformMotion synthesizes the writer performing one motion across
// the plate and returns the reader's reading stream (ending with a
// trailing quiet second). trialSeed varies the human execution.
func (s *Simulator) PerformMotion(m Motion, trialSeed int64) ([]Reading, time.Duration) {
	synth := s.sys.Synthesizer(s.writer, rand.New(rand.NewSource(trialSeed)))
	script := synth.DrawOne(m)
	return s.sys.RunScript(script), script.Duration()
}

// WriteLetter synthesizes the writer drawing a letter stroke by stroke
// and returns the reading stream plus the script duration.
func (s *Simulator) WriteLetter(ch rune, trialSeed int64) ([]Reading, time.Duration, error) {
	specs, err := sim.LetterSpecs(ch)
	if err != nil {
		return nil, 0, err
	}
	synth := s.sys.Synthesizer(s.writer, rand.New(rand.NewSource(trialSeed)))
	script := synth.Write(specs)
	return s.sys.RunScript(script), script.Duration(), nil
}

// WriteWord synthesizes a whole word written letter by letter in one
// continuous session — the succession-of-letters scenario §III-C2
// leaves as future work. The streaming Recognizer emits one
// LetterDeduced event per letter.
func (s *Simulator) WriteWord(word string, trialSeed int64) ([]Reading, time.Duration, error) {
	synth := s.sys.Synthesizer(s.writer, rand.New(rand.NewSource(trialSeed)))
	ws, err := sim.WriteWord(synth, word, nil)
	if err != nil {
		return nil, 0, err
	}
	return s.sys.RunScript(ws.Script), ws.Script.Duration(), nil
}

// TagEPC returns the EPC of the tag at grid position (row, col), or
// false when out of range.
func (s *Simulator) TagEPC(row, col int) (EPC, bool) {
	t := s.sys.Dep.Array.TagAt(row, col)
	if t == nil {
		return EPC{}, false
	}
	return t.EPC, true
}

// TagIndexByEPC resolves an EPC to the row-major tag index, or -1.
func (s *Simulator) TagIndexByEPC(e EPC) int {
	t := s.sys.Dep.Array.ByEPC(e)
	if t == nil {
		return -1
	}
	return t.Index
}
